// Libfabric-style endpoint/completion-queue facade over the UniFabric
// runtime (DESIGN.md §11). The OFI idiom — fi_mr_reg / fi_endpoint /
// fi_cq_read — is how real fabric providers expose themselves to
// applications, so external-style workloads can be scripted against the
// simulator without knowing eTrans or eCollect:
//
//   * MemRegion: a registered (node, addr, len) window with a key, the
//     unit RMA reads/writes name;
//   * Endpoint: posts tagged sends/recvs (two-sided: a send matches the
//     destination endpoint's oldest posted recv with the same tag, or
//     parks in its bounded unexpected queue), RMA read/write against
//     remote regions, and AllReduce over eCollect;
//   * CompletionQueue: a bounded reap queue; every posted operation
//     retires as exactly one completion (audited:
//     core/ofi/completions_conserved).
//
// Data movement runs on eTrans through the endpoint's migration agent, so
// OFI traffic shares pacing, arbiter leases, retries, and fault semantics
// with every other initiator in the system. Matched sends move bytes
// between the two regions' *home* nodes: register regions on
// fabric-servable memory (FAM/FAA scratch) — hosts orchestrate transfers
// but are not remote-write targets in this model. RMA local buffers are
// the endpoint's own node (host-local DRAM works there: the agent accesses
// it directly).

#ifndef SRC_CORE_OFI_H_
#define SRC_CORE_OFI_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/collect.h"
#include "src/core/etrans.h"
#include "src/sim/audit.h"
#include "src/sim/metrics.h"

namespace unifab {

// A registered memory window on one node; `key` names it in RMA calls.
struct MemRegion {
  PbrId node = kInvalidPbrId;
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
  std::uint64_t key = 0;
};

enum class OfiOp : std::uint8_t { kSend, kRecv, kRead, kWrite, kCollective };

const char* OfiOpName(OfiOp op);

struct OfiCompletion {
  std::uint64_t context = 0;  // caller cookie, returned verbatim
  OfiOp op = OfiOp::kSend;
  bool ok = true;
  std::uint64_t bytes = 0;
  std::uint64_t tag = 0;  // sends/recvs: the matched tag
  Tick completed_at = 0;
};

// Bounded reap queue. Overflow drops the *newest* completion (counted, and
// charged against conservation as retired) rather than growing unbounded.
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t depth = 1024) : depth_(depth) {}

  // Pops the oldest completion into `out`; false when the queue is empty.
  bool Reap(OfiCompletion* out);

  std::size_t pending() const { return entries_.size(); }
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  friend class OfiDomain;
  bool Push(const OfiCompletion& c);  // false = dropped on overflow

  std::size_t depth_;
  std::deque<OfiCompletion> entries_;
  std::uint64_t overflow_drops_ = 0;
};

struct OfiStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t reads_posted = 0;
  std::uint64_t writes_posted = 0;
  std::uint64_t collectives_posted = 0;
  std::uint64_t completions = 0;         // retired (delivered or dropped)
  std::uint64_t errors = 0;              // completions with ok = false
  std::uint64_t unexpected_matched = 0;  // sends that waited for a late recv
  std::uint64_t cq_overflows = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class OfiDomain;

// One communication endpoint bound to a fabric node, a migration agent
// (which initiates its transfers), and a completion queue. Created and
// owned by OfiDomain.
class Endpoint {
 public:
  // Two-sided tagged messaging. A send completes on the sender's CQ and
  // the matched recv on the receiver's CQ once the payload lands. A recv
  // shorter than the matched send fails both sides (truncation).
  void PostRecv(std::uint64_t tag, const MemRegion& local, std::uint64_t context);
  void PostSend(PbrId dest, std::uint64_t tag, const MemRegion& local, std::uint64_t context);

  // One-sided RMA against a registered remote region (bounds-checked).
  void Read(const MemRegion& remote, std::uint64_t local_addr, std::uint64_t bytes,
            std::uint64_t context);
  void Write(const MemRegion& remote, std::uint64_t local_addr, std::uint64_t bytes,
             std::uint64_t context);

  // Collective over eCollect; one completion when the AllReduce terminates.
  void AllReduce(const CollectiveGroup& group, std::uint64_t bytes, std::uint64_t context);

  PbrId node() const { return node_; }
  const std::string& name() const { return name_; }
  CompletionQueue* cq() const { return cq_; }

 private:
  friend class OfiDomain;
  friend class AuditTestPeer;

  struct PostedRecv {
    std::uint64_t tag = 0;
    MemRegion region;
    std::uint64_t context = 0;
  };
  struct UnexpectedSend {
    Endpoint* sender = nullptr;
    std::uint64_t tag = 0;
    MemRegion region;
    std::uint64_t context = 0;
  };

  Endpoint(OfiDomain* domain, PbrId node, MigrationAgent* agent, CompletionQueue* cq,
           std::string name)
      : domain_(domain), node_(node), agent_(agent), cq_(cq), name_(std::move(name)) {}

  OfiDomain* domain_;
  PbrId node_;
  MigrationAgent* agent_;
  CompletionQueue* cq_;
  std::string name_;
  std::deque<PostedRecv> recvs_;         // posted, not yet matched
  std::deque<UnexpectedSend> unexpected_;  // arrived sends awaiting a recv
};

struct OfiConfig {
  // eTrans attributes for endpoint data movement.
  std::uint32_t chunk_bytes = 4096;
  int pipeline_depth = 4;
  // Sends parked at a receiver with no matching recv beyond this bound are
  // failed (both completions, ok = false) instead of queueing forever.
  std::size_t max_unexpected = 64;
};

// The provider: owns endpoints, the memory-registration table, and the
// conservation audit (core/ofi/completions_conserved: ops posted ==
// completions retired + structurally pending work).
class OfiDomain {
 public:
  OfiDomain(Engine* engine, ETransEngine* etrans, CollectiveEngine* collect,
            OfiConfig config = {});

  OfiDomain(const OfiDomain&) = delete;
  OfiDomain& operator=(const OfiDomain&) = delete;

  // Registers a memory window and assigns its key.
  MemRegion RegisterMemory(PbrId node, std::uint64_t addr, std::uint64_t len);
  // Key lookup; nullptr for unknown keys.
  const MemRegion* RegionByKey(std::uint64_t key) const;

  // Creates an endpoint on `node` whose transfers are initiated by `agent`
  // and whose completions land on `cq` (caller-owned, must outlive the
  // domain). One endpoint per node.
  Endpoint* CreateEndpoint(PbrId node, MigrationAgent* agent, CompletionQueue* cq,
                           std::string name);
  Endpoint* EndpointOf(PbrId node) const;

  const OfiStats& stats() const { return stats_; }
  const OfiConfig& config() const { return config_; }

 private:
  friend class Endpoint;
  friend class AuditTestPeer;

  // Retires one op as a completion on `cq` (overflow still retires it).
  void Complete(CompletionQueue* cq, OfiCompletion c);
  // Launches the eTrans transfer for a matched (send, recv) pair.
  void LaunchMatched(Endpoint* sender, std::uint64_t tag, const MemRegion& src,
                     std::uint64_t send_context, Endpoint* receiver, const MemRegion& dst,
                     std::uint64_t recv_context);
  void LaunchRma(Endpoint* ep, OfiOp op, const MemRegion& remote, std::uint64_t local_addr,
                 std::uint64_t bytes, std::uint64_t context);

  Engine* engine_;
  ETransEngine* etrans_;
  CollectiveEngine* collect_;
  OfiConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unordered_map<PbrId, Endpoint*> by_node_;
  std::unordered_map<std::uint64_t, MemRegion> regions_;
  std::uint64_t next_key_ = 1;
  std::uint64_t inflight_ops_ = 0;  // ops whose transfer/collective is running
  OfiStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;
};

}  // namespace unifab

#endif  // SRC_CORE_OFI_H_
