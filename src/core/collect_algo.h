// Collective schedule construction and algorithm selection (eCollect's
// planning half). Pure functions from (operation, group size, payload,
// topology span) to a DAG of chunked point-to-point steps — no engine or
// fabric dependencies, so every schedule shape is unit-testable.
//
// Algorithms follow the classic collective taxonomy:
//   * kRing — bandwidth-optimal pipelines: each member pushes one slice per
//     round to its ring successor over its own uplink, so all N fabric links
//     carry traffic concurrently. 2(N-1) rounds for AllReduce
//     (reduce-scatter + allgather), N-1 for AllGather.
//   * kBinomialTree — latency-optimal recursive doubling/halving:
//     ceil(log2 N) rounds, each moving the full payload between pair peers.
//   * kLinear — root fan-out/fan-in in one step (Scatter/Gather, where each
//     member touches a distinct slice and no forwarding helps).
//
// Selection is cost-model driven: alpha (per-step latency, scaled by the
// group's switch-hop span) vs beta (per-byte wire time). Large payloads on
// short spans amortize ring's extra rounds; small payloads on long spans
// want the tree's logarithmic round count.

#ifndef SRC_CORE_COLLECT_ALGO_H_
#define SRC_CORE_COLLECT_ALGO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unifab {

enum class CollectiveOp { kBroadcast, kScatter, kGather, kReduce, kAllGather, kAllReduce };

enum class CollectiveAlgorithm { kAuto, kRing, kBinomialTree, kLinear };

const char* CollectiveOpName(CollectiveOp op);
const char* CollectiveAlgorithmName(CollectiveAlgorithm algo);

// One point-to-point movement between two group members (indices into the
// group's member list). Offsets are relative to each member's buffer base.
struct StepTransfer {
  int src = -1;
  int dst = -1;
  std::uint64_t src_offset = 0;
  std::uint64_t dst_offset = 0;
  std::uint64_t bytes = 0;
};

// One DAG node: a set of transfers that may run concurrently once every
// step in `deps` has completed. `reducing` marks steps whose destinations
// combine incoming data (byte conservation is audited per such step).
struct CollectiveStep {
  std::vector<StepTransfer> transfers;
  std::vector<int> deps;  // indices of prerequisite steps (always < own index)
  bool reducing = false;
};

struct CollectiveSchedule {
  CollectiveOp op = CollectiveOp::kBroadcast;
  CollectiveAlgorithm algo = CollectiveAlgorithm::kLinear;
  int num_members = 0;
  std::vector<CollectiveStep> steps;

  // Sum of transfer bytes across all steps (total wire traffic planned).
  std::uint64_t TotalBytes() const;
  // Longest dependency chain, in steps (the schedule's critical path).
  int DepthSteps() const;
};

// Knobs the planner needs; a subset of CollectiveConfig (collect.h) so the
// algorithm layer stays engine-free.
struct CollectivePlanConfig {
  std::uint32_t chunk_bytes = 16 * 1024;  // ring broadcast pipeline granularity
  int pipeline_chunks = 4;                // max chunks in flight per ring broadcast
  // Cost model: per-step fixed cost = step_overhead_us + span_hops * hop_us;
  // per-byte cost = 1 / effective_mbps (MB/s == bytes/us).
  double step_overhead_us = 3.0;
  double hop_us = 0.2;
  double effective_mbps = 8000.0;
};

// --- Schedule builders ---------------------------------------------------
// `n` is the group size; `root` indexes the rooted operations' root member.
// For Broadcast/Reduce/AllReduce, `bytes` is the full payload each member
// holds; for Scatter/Gather/AllGather it is the per-member slice.

CollectiveSchedule BuildBroadcast(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes,
                                  const CollectivePlanConfig& config);
CollectiveSchedule BuildScatter(int n, int root, std::uint64_t slice_bytes);
CollectiveSchedule BuildGather(int n, int root, std::uint64_t slice_bytes);
CollectiveSchedule BuildReduce(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes);
CollectiveSchedule BuildAllGather(CollectiveAlgorithm algo, int n, std::uint64_t slice_bytes);
CollectiveSchedule BuildAllReduce(CollectiveAlgorithm algo, int n, std::uint64_t bytes);

// --- Selection -----------------------------------------------------------

// Predicted completion time (us) of `algo` for this operation; the model
// behind ChooseAlgorithm, exposed for tests and the bench's crossover plot.
double EstimateCostUs(CollectiveOp op, CollectiveAlgorithm algo, int n, std::uint64_t bytes,
                      int span_hops, const CollectivePlanConfig& config);

// Picks the concrete algorithm for an op over a group whose widest member
// pair is `span_hops` switch-graph edges apart (2 == same switch). Returns
// kRing, kBinomialTree, or kLinear — never kAuto.
CollectiveAlgorithm ChooseAlgorithm(CollectiveOp op, int n, std::uint64_t bytes, int span_hops,
                                    const CollectivePlanConfig& config);

}  // namespace unifab

#endif  // SRC_CORE_COLLECT_ALGO_H_
