// Collective schedule construction and algorithm selection (eCollect's
// planning half). Pure functions from (operation, group size, payload,
// topology span) to a DAG of chunked point-to-point steps — no engine or
// fabric dependencies, so every schedule shape is unit-testable.
//
// Algorithms follow the classic collective taxonomy:
//   * kRing — bandwidth-optimal pipelines: each member pushes one slice per
//     round to its ring successor over its own uplink, so all N fabric links
//     carry traffic concurrently. 2(N-1) rounds for AllReduce
//     (reduce-scatter + allgather), N-1 for AllGather.
//   * kBinomialTree — latency-optimal recursive doubling/halving:
//     ceil(log2 N) rounds, each moving the full payload between pair peers.
//   * kLinear — root fan-out/fan-in in one step (Scatter/Gather, where each
//     member touches a distinct slice and no forwarding helps).
//
// Selection is cost-model driven: alpha (per-step latency, scaled by the
// group's switch-hop span) vs beta (per-byte wire time). Large payloads on
// short spans amortize ring's extra rounds; small payloads on long spans
// want the tree's logarithmic round count.

#ifndef SRC_CORE_COLLECT_ALGO_H_
#define SRC_CORE_COLLECT_ALGO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unifab {

enum class CollectiveOp { kBroadcast, kScatter, kGather, kReduce, kAllGather, kAllReduce };

// kHierarchical (AllReduce only) is the two-tier pod form of DESIGN.md §11:
// ring reduce-scatter + leader gather inside each pod, binomial tree among
// the pod leaders across the bridge tier, broadcast back down.
enum class CollectiveAlgorithm { kAuto, kRing, kBinomialTree, kLinear, kHierarchical };

const char* CollectiveOpName(CollectiveOp op);
const char* CollectiveAlgorithmName(CollectiveAlgorithm algo);

// One point-to-point movement between two group members (indices into the
// group's member list). Offsets are relative to each member's buffer base.
struct StepTransfer {
  int src = -1;
  int dst = -1;
  std::uint64_t src_offset = 0;
  std::uint64_t dst_offset = 0;
  std::uint64_t bytes = 0;
};

// One DAG node: a set of transfers that may run concurrently once every
// step in `deps` has completed. `reducing` marks steps whose destinations
// combine incoming data (byte conservation is audited per such step).
struct CollectiveStep {
  std::vector<StepTransfer> transfers;
  std::vector<int> deps;  // indices of prerequisite steps (always < own index)
  bool reducing = false;
};

struct CollectiveSchedule {
  CollectiveOp op = CollectiveOp::kBroadcast;
  CollectiveAlgorithm algo = CollectiveAlgorithm::kLinear;
  int num_members = 0;
  std::vector<CollectiveStep> steps;

  // Sum of transfer bytes across all steps (total wire traffic planned).
  std::uint64_t TotalBytes() const;
  // Longest dependency chain, in steps (the schedule's critical path).
  int DepthSteps() const;
};

// Knobs the planner needs; a subset of CollectiveConfig (collect.h) so the
// algorithm layer stays engine-free.
struct CollectivePlanConfig {
  std::uint32_t chunk_bytes = 16 * 1024;  // ring broadcast pipeline granularity
  int pipeline_chunks = 4;                // max chunks in flight per ring broadcast
  // Cost model: per-step fixed cost = step_overhead_us + span_hops * hop_us;
  // per-byte cost = 1 / effective_mbps (MB/s == bytes/us).
  double step_overhead_us = 3.0;
  double hop_us = 0.2;
  double effective_mbps = 8000.0;

  // Second (alpha, beta) tier for steps that cross an inter-pod Ethernet
  // bridge (DESIGN.md §11): such steps pay bridge_alpha_us extra latency
  // and run at min(effective_mbps, bridge_mbps). Both 0 = no bridge tier
  // (flat fabric); the runtime fills them from the cluster's BridgeConfig.
  double bridge_alpha_us = 0.0;
  double bridge_mbps = 0.0;
};

// --- Schedule builders ---------------------------------------------------
// `n` is the group size; `root` indexes the rooted operations' root member.
// For Broadcast/Reduce/AllReduce, `bytes` is the full payload each member
// holds; for Scatter/Gather/AllGather it is the per-member slice.

CollectiveSchedule BuildBroadcast(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes,
                                  const CollectivePlanConfig& config);
CollectiveSchedule BuildScatter(int n, int root, std::uint64_t slice_bytes);
CollectiveSchedule BuildGather(int n, int root, std::uint64_t slice_bytes);
CollectiveSchedule BuildReduce(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes);
CollectiveSchedule BuildAllGather(CollectiveAlgorithm algo, int n, std::uint64_t slice_bytes);
CollectiveSchedule BuildAllReduce(CollectiveAlgorithm algo, int n, std::uint64_t bytes);

// Hierarchical AllReduce for pod-spanning groups. `pod_of[i]` is member
// i's pod; each pod's leader is its first member in group order. Phase 1
// runs an independent ring reduce-scatter + slice gather inside every pod
// (bandwidth-optimal on the CXL tier); phase 2 a binomial-tree AllReduce
// among the pod leaders (latency-optimal across the Ethernet tier); phase
// 3 a binomial broadcast from each leader back into its pod. Degenerates
// to plain ring AllReduce when all members share one pod.
CollectiveSchedule BuildHierarchicalAllReduce(int n, std::uint64_t bytes,
                                              const std::vector<int>& pod_of);

// --- Selection -----------------------------------------------------------

// Predicted completion time (us) of `algo` for this operation; the model
// behind ChooseAlgorithm, exposed for tests and the bench's crossover plot.
double EstimateCostUs(CollectiveOp op, CollectiveAlgorithm algo, int n, std::uint64_t bytes,
                      int span_hops, const CollectivePlanConfig& config);

// Picks the concrete algorithm for an op over a group whose widest member
// pair is `span_hops` switch-graph edges apart (2 == same switch). Returns
// kRing, kBinomialTree, or kLinear — never kAuto.
CollectiveAlgorithm ChooseAlgorithm(CollectiveOp op, int n, std::uint64_t bytes, int span_hops,
                                    const CollectivePlanConfig& config);

// Pod-aware AllReduce cost: like EstimateCostUs but charges every round
// that crosses a pod boundary at the bridge tier. For kHierarchical the
// intra-pod phases use the base tier (sized by the largest pod) and only
// the leader tree pays bridge costs. Falls back to the flat model when the
// group sits in one pod or no bridge tier is configured.
double EstimateAllReduceCostUs(CollectiveAlgorithm algo, int n, std::uint64_t bytes,
                               int span_hops, const std::vector<int>& pod_of,
                               const CollectivePlanConfig& config);

// AllReduce selection over a possibly pod-spanning group: picks the
// cheapest of flat ring, flat tree, and hierarchical under the two-tier
// model. Never returns kAuto; returns a flat algorithm when the group
// occupies a single pod.
CollectiveAlgorithm ChooseAllReduceAlgorithm(int n, std::uint64_t bytes, int span_hops,
                                             const std::vector<int>& pod_of,
                                             const CollectivePlanConfig& config);

}  // namespace unifab

#endif  // SRC_CORE_COLLECT_ALGO_H_
