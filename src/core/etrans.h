// Elastic transaction engine: data movement as a managed service (FCC DP#1).
//
// eTrans(src_addr_list, dst_addr_list, immediate_bit, attributes, ownership)
// decouples the movement *initiator* from the *executor*:
//   * immediate transfers run synchronously on the initiator (for
//     latency-sensitive, execution-coupled movement);
//   * everything else is delegated to a migration agent in the same memory
//     domain as the data (host agents for host DRAM, FAM-controller agents
//     for chassis DRAM), chosen by the engine;
//   * delegated transfers are paced by bandwidth leases from the central
//     arbiter (remote-memory bandwidth throttling, the control-plane policy
//     the paper names).
//
// Completion handling follows the descriptor's ownership field (distributed
// futures, DP#4).
//
// Failure recovery (FCC DP#3, passive failure domains): every execution
// attempt runs under a per-job deadline scaled from the transfer size and
// its pacing rate. A missed deadline (or an MSHR failed by a link epoch
// change) fails the attempt; the engine re-resolves the route through the
// fabric manager, backs off exponentially, and redrives the job on a fresh
// executor until it succeeds or retries are exhausted. Futures always reach
// a terminal TransferStatus — kOk, or kAborted after the last retry.

#ifndef SRC_CORE_ETRANS_H_
#define SRC_CORE_ETRANS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/arbiter.h"
#include "src/core/future.h"
#include "src/fabric/dispatch.h"
#include "src/mem/dram.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// One contiguous piece of data on one node.
struct Segment {
  PbrId node = kInvalidPbrId;  // fabric id of the memory's owner (FAM or host)
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
};

struct ETransAttributes {
  std::uint32_t chunk_bytes = 4096;
  int pipeline_depth = 4;       // chunks in flight per transfer
  bool throttled = true;        // ask the arbiter for a bandwidth lease
  double request_mbps = 8000.0; // lease ask when throttled
  Channel channel = Channel::kMem;

  // Multi-tenant identity for arbiter leases: (initiating adapter, tenant)
  // is the flow key, and `qos` picks the arbitration class. The defaults
  // are the single-tenant legacy flow.
  std::uint32_t tenant = 0;
  QosClass qos = QosClass::kBestEffort;

  // Token-bucket depth for lease pacing, in chunks. A paced job may issue up
  // to this many chunks back to back before the token clock throttles it,
  // and after an idle stretch it catches up with an equally sized burst —
  // the average rate still matches the lease exactly. 1 = strict per-chunk
  // pacing (one pump wakeup per chunk).
  std::uint32_t burst_chunks = 1;

  // Per-attempt deadline = floor + factor * (bytes / pacing rate). The floor
  // absorbs fixed costs (lease RTT, flit latency); the factor leaves slack
  // for congestion before a slow transfer is declared dead.
  Tick deadline_floor = FromUs(200.0);
  double deadline_factor = 8.0;
};

struct ETransDescriptor {
  std::vector<Segment> src;
  std::vector<Segment> dst;  // total dst bytes must equal total src bytes
  bool immediate = false;
  ETransAttributes attributes;
  Ownership ownership = Ownership::kInitiator;
};

// A flattened unit of work executed by one agent.
struct TransferJob {
  std::uint64_t job_id = 0;
  ETransDescriptor desc;
  PbrId reply_to = kInvalidPbrId;  // initiator (for kInitiator ownership)
};

struct AgentStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t jobs_timed_out = 0;  // attempts killed by the per-job deadline
  std::uint64_t chunks_failed = 0;   // chunk ops failed by the fabric (MSHR death)
  std::uint64_t bytes_moved = 0;
  std::uint64_t throttle_waits = 0;  // chunks delayed by the bandwidth lease
  std::uint64_t lease_denials = 0;
  std::uint64_t pushes_sent = 0;     // remote-write chunks pushed over the fabric
  std::uint64_t pushes_served = 0;   // pushes landed into this agent's local memory
  std::uint64_t push_timeouts = 0;   // pushes whose ack never came back
  Summary job_latency_us;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Executes transfer jobs near one memory domain. `local_mem`, when given,
// is accessed directly (same-domain DMA); all other segments go through the
// agent's fabric adapter.
class MigrationAgent {
 public:
  MigrationAgent(Engine* engine, MessageDispatcher* dispatcher, DramDevice* local_mem,
                 ArbiterClient* arbiter, std::string name);

  // Runs a job; `done` fires exactly once: when every dst byte is durable,
  // or when the attempt fails (deadline missed / fabric failure).
  void ExecuteTransfer(const TransferJob& job, std::function<void(TransferResult)> done);

  // Whether this agent can touch every segment of `desc`: either the
  // segment is in the agent's own memory domain, or the agent fronts a host
  // adapter that can issue fabric transactions. FAM-controller agents can
  // only execute jobs local to their chassis. Push-enabled endpoint agents
  // additionally accept remote *destinations* (served by the push protocol)
  // as long as every source segment is local.
  bool CanExecute(const ETransDescriptor& desc) const;

  // Opts this agent into the eTrans push protocol: remote destination
  // writes become kTagPut runtime messages carrying the chunk payload to
  // the destination's agent, which lands them in its local memory and acks.
  // This is what lets a collective's member-to-member transfers run on the
  // members' own uplinks instead of funneling through a host adapter.
  // Deliberately NOT enabled for FAM-controller agents: their executor
  // domain stays chassis-local (pinned by tests).
  void EnablePush() { push_enabled_ = true; }
  bool push_enabled() const { return push_enabled_; }

  ArbiterClient* arbiter() const { return arbiter_; }

  // Deadline for one execution attempt of `desc` at `rate_mbps` pacing
  // (<= 0 falls back to the descriptor's requested rate).
  static Tick AttemptDeadline(const ETransDescriptor& desc, double rate_mbps);

  // Bounded exponential backoff before re-asking the arbiter after a lease
  // denial: 5us << retries, clamped so persistent congestion cannot push
  // the wait beyond 100us per round.
  static Tick LeaseBackoff(int retries);

  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }
  const AgentStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  MessageDispatcher* dispatcher() const { return dispatcher_; }

 private:
  friend class ETransEngine;

  struct ActiveJob {
    TransferJob job;
    std::function<void(TransferResult)> done;
    Tick started_at = 0;
    std::uint64_t offset = 0;       // bytes fully issued
    std::uint64_t completed = 0;    // bytes durable
    std::uint64_t total = 0;
    int in_flight = 0;
    double granted_mbps = 0.0;
    Tick next_issue_at = 0;
    bool pump_wakeup_armed = false;  // a throttle wakeup is already scheduled
    Tick pump_wakeup_at = 0;         // when it fires (valid while armed)
    PbrId lease_resource = kInvalidPbrId;
    int lease_retries = 0;
    Tick lease_renew_at = 0;
    bool renew_pending = false;
    bool dead = false;  // attempt failed; late chunk completions are ignored
    EventId watchdog = kInvalidEventId;
  };

  static constexpr int kMaxLeaseRetries = 4;

  void StartJob(std::shared_ptr<ActiveJob> job);
  void ArmWatchdog(const std::shared_ptr<ActiveJob>& job, double rate_mbps);
  void FailJob(const std::shared_ptr<ActiveJob>& job, TransferStatus status);
  void MaybeRenewLease(const std::shared_ptr<ActiveJob>& job);
  void PumpChunks(const std::shared_ptr<ActiveJob>& job);
  void IssueChunk(const std::shared_ptr<ActiveJob>& job, std::uint64_t offset,
                  std::uint32_t bytes);
  void ReadSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                   std::function<void(bool ok)> done);
  void WriteSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                    std::function<void(bool ok)> done);
  // Push protocol (remote destination writes from endpoint agents).
  void PushRemote(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                  std::function<void(bool ok)> done);
  void ServePut(const FabricMessage& msg);          // destination side
  void CompletePut(std::uint64_t put_id, bool ok);  // source side (ack landed)
  // Maps a job-relative offset to (segment, in-segment offset).
  static std::pair<const Segment*, std::uint64_t> Locate(const std::vector<Segment>& segs,
                                                         std::uint64_t offset);

  struct PendingPut {
    std::function<void(bool)> done;
    EventId timeout = kInvalidEventId;
  };

  // A push whose ack hasn't arrived by then is failed (the destination
  // chassis or its uplink died); the owning job's retry machinery redrives.
  static constexpr Tick kPutAckTimeout = FromUs(150.0);

  Engine* engine_;
  MessageDispatcher* dispatcher_;
  DramDevice* local_mem_;
  ArbiterClient* arbiter_;
  std::string name_;
  bool push_enabled_ = false;
  std::uint64_t next_put_ = 1;
  std::unordered_map<std::uint64_t, PendingPut> pending_puts_;
  AgentStats stats_;
  MetricGroup metrics_;
};

struct ETransStats {
  std::uint64_t immediate_transfers = 0;
  std::uint64_t delegated_transfers = 0;
  std::uint64_t bytes_requested = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Engine-level retry policy for failed execution attempts.
struct ETransRecoveryConfig {
  int max_retries = 4;               // attempts = 1 + max_retries
  Tick initial_backoff = FromUs(25.0);
  Tick max_backoff = FromUs(800.0);
  double backoff_multiplier = 2.0;
  bool reroute_on_retry = true;      // re-resolve routes before each retry
};

struct ETransRecoveryStats {
  std::uint64_t attempt_failures = 0;  // attempts that ended not-ok
  std::uint64_t retries = 0;           // redrives scheduled
  std::uint64_t reroutes = 0;          // fabric-manager re-resolutions invoked
  std::uint64_t jobs_recovered = 0;    // succeeded after >= 1 failed attempt
  std::uint64_t jobs_aborted = 0;      // terminal failures (retries exhausted)
  Summary time_to_recover_us;          // first failure -> eventual success

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// The engine: validates descriptors, picks executors, and tracks futures.
class ETransEngine {
 public:
  explicit ETransEngine(Engine* engine, ETransRecoveryConfig recovery = {});

  // Registers an agent; `domain_node` is the memory node whose data this
  // agent can touch directly (its own host's DRAM / its chassis rDIMMs).
  // With `executor_candidate` false the agent is wired for messages (it
  // serves delegated jobs and push writes on its dispatcher) but PickExecutor
  // never selects it — callers that want it must submit with it as the
  // initiator. The collective engine registers FAA agents this way so
  // point-to-point eTrans placement is untouched.
  void RegisterAgent(PbrId domain_node, MigrationAgent* agent, bool executor_candidate = true);

  // Submits a descriptor on behalf of `initiator` (the agent co-located
  // with the submitting host). Returns a future per the ownership field.
  TransferFuture Submit(MigrationAgent* initiator, const ETransDescriptor& desc);

  // Hook invoked before each retry so the fabric manager can re-resolve
  // routes around whatever failed (FabricInterconnect::ConfigureRouting).
  void SetRerouteHook(std::function<void()> hook) { reroute_ = std::move(hook); }

  // Total bytes a descriptor moves; asserts src/dst symmetry.
  static std::uint64_t ValidateAndSize(const ETransDescriptor& desc);

  const ETransStats& stats() const { return stats_; }
  const ETransRecoveryStats& recovery_stats() const { return recovery_stats_; }
  const ETransRecoveryConfig& recovery_config() const { return recovery_; }

 private:
  // One logical transfer across all its execution attempts.
  struct PendingTransfer {
    ETransDescriptor desc;
    MigrationAgent* initiator = nullptr;
    TransferFuture future;
    int attempts = 0;
    Tick first_failure_at = 0;      // 0 until an attempt fails
    std::uint64_t job_id = 0;       // job id of the current attempt
    EventId deadline_event = kInvalidEventId;  // engine-side watchdog (remote)
    // Terminal-status bookkeeping lives in the future itself: Ready() means
    // a terminal status was delivered (TryFulfill enforces exactly-once).
  };

  MigrationAgent* PickExecutor(MigrationAgent* initiator, const ETransDescriptor& desc) const;
  void HandleAgentMessage(MigrationAgent* agent, const FabricMessage& msg);
  // Launches one execution attempt (local, immediate, or delegated).
  void Dispatch(const std::shared_ptr<PendingTransfer>& pt);
  // Terminal-or-retry decision for a finished attempt.
  void OnAttemptDone(const std::shared_ptr<PendingTransfer>& pt, TransferResult result);
  Tick RetryBackoff(int failed_attempts) const;

  Engine* engine_;
  ETransRecoveryConfig recovery_;
  std::unordered_map<PbrId, MigrationAgent*> agents_;           // by memory domain
  std::unordered_map<PbrId, MigrationAgent*> agents_by_self_;   // by adapter id
  // job id of the in-flight attempt -> transfer, for remote kInitiator
  // delegations awaiting a kTagDone (or an engine-side timeout).
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingTransfer>> tracked_;
  std::function<void()> reroute_;
  std::uint64_t next_job_ = 1;
  // Transfer-lifecycle conservation: every submitted transfer must reach
  // exactly one terminal status (kOk / kTimedOut / kAborted), never two.
  std::uint64_t transfers_submitted_ = 0;
  std::uint64_t transfers_terminal_ = 0;
  std::uint64_t double_terminals_ = 0;  // attempts resolved after terminal
  ETransStats stats_;
  ETransRecoveryStats recovery_stats_;
  MetricGroup metrics_;
  MetricGroup recovery_metrics_;
  AuditScope audit_;

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_CORE_ETRANS_H_
