// Hardware cooperative scalable functions (FCC DP#3, second half).
//
// Extends SR-IOV-style scalable functions with an *active execution
// context*: each installed function owns (1) a share of the FAA's
// domain-specific processing cores, (2) a table of message handlers (actor
// model), and (3) a coordination sublayer describing how it interacts with
// co-located functions — local sends traverse the chassis scratch fabric at
// nanosecond cost, remote sends ride the memory fabric. The design follows
// TAM / active messages: arriving messages name their handler and run to
// completion on an execution engine.
//
// This is the hardware execution substrate idempotent tasks and the MIMO
// case study compile onto.

#ifndef SRC_CORE_SFUNC_H_
#define SRC_CORE_SFUNC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/topo/chassis.h"

namespace unifab {

using FunctionId = std::uint32_t;

struct SFuncMsg {
  FunctionId fn = 0;        // destination function on the target FAA
  std::uint32_t type = 0;   // selects the handler
  std::uint32_t bytes = 0;  // payload size (timed on the wire)
  std::shared_ptr<void> body;
  PbrId reply_to = kInvalidPbrId;  // adapter that sent the message
};

class ScalableFunctionRuntime;

// Handed to handlers; lets them send messages and read identity.
class SFuncContext {
 public:
  SFuncContext(ScalableFunctionRuntime* runtime, FunctionId self, const SFuncMsg& msg)
      : runtime_(runtime), self_(self), msg_(msg) {}

  const SFuncMsg& msg() const { return msg_; }
  FunctionId self() const { return self_; }

  // Coordination sublayer: co-located function send (scratch-memory path).
  void SendLocal(FunctionId fn, std::uint32_t type, std::uint32_t bytes,
                 std::shared_ptr<void> body);

  // Cross-chassis send over the memory fabric.
  void SendRemote(PbrId faa, FunctionId fn, std::uint32_t type, std::uint32_t bytes,
                  std::shared_ptr<void> body);

  // Reply to the message's origin (host adapter or FAA).
  void Reply(std::uint32_t type, std::uint32_t bytes, std::shared_ptr<void> body);

 private:
  ScalableFunctionRuntime* runtime_;
  FunctionId self_;
  const SFuncMsg& msg_;
};

// One handler: a kernel cost (runs on an accelerator engine) plus a
// host-visible effect executed at completion.
struct SFuncHandler {
  Tick cost = FromUs(1.0);
  std::function<void(SFuncContext&)> effect;
};

struct SFuncSpec {
  std::string name;
  std::unordered_map<std::uint32_t, SFuncHandler> handlers;
};

struct SFuncStats {
  std::uint64_t messages_handled = 0;
  std::uint64_t messages_dropped = 0;  // unknown fn/type, or chassis failed
  std::uint64_t local_sends = 0;
  std::uint64_t remote_sends = 0;
  Summary mailbox_wait_us;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// The per-FAA runtime: installs functions, dispatches arriving messages to
// their mailboxes, and executes handlers on the accelerator engines.
class ScalableFunctionRuntime {
 public:
  ScalableFunctionRuntime(Engine* engine, FaaChassis* faa,
                          Tick local_coordination_latency = FromNs(100.0));

  FunctionId Install(SFuncSpec spec);

  // Entry point for locally generated messages (tests / co-located sends).
  void Deliver(SFuncMsg msg);

  // Call after FaaChassis::Recover(): clears stuck actor state (kernels lost
  // to the failure) and resumes mailbox processing.
  void ResetAfterRecovery();

  PbrId fabric_id() const { return faa_->id(); }
  FaaChassis* faa() const { return faa_; }
  const SFuncStats& stats() const { return stats_; }
  std::size_t MailboxDepth(FunctionId fn) const;

 private:
  friend class SFuncContext;

  struct Function {
    SFuncSpec spec;
    std::deque<std::pair<SFuncMsg, Tick>> mailbox;  // message + arrival time
    bool running = false;  // actor semantics: one handler at a time
  };

  void HandleFabricMessage(const FabricMessage& msg);
  void PumpMailbox(FunctionId fn);

  Engine* engine_;
  FaaChassis* faa_;
  Tick local_latency_;
  std::unordered_map<FunctionId, Function> functions_;
  FunctionId next_fn_ = 1;
  SFuncStats stats_;
  MetricGroup metrics_;
};

// Host-side invoker.
class SFuncClient {
 public:
  SFuncClient(MessageDispatcher* dispatcher) : dispatcher_(dispatcher) {
    dispatcher_->RegisterService(kSvcScalableFunc, [this](const FabricMessage& msg) {
      const auto m = std::static_pointer_cast<SFuncMsg>(msg.body);
      if (m != nullptr && on_reply_) {
        on_reply_(*m);
      }
    });
  }

  void Invoke(PbrId faa, FunctionId fn, std::uint32_t type, std::uint32_t bytes,
              std::shared_ptr<void> body);

  // Receives replies from handlers that call SFuncContext::Reply.
  void OnReply(std::function<void(const SFuncMsg&)> cb) { on_reply_ = std::move(cb); }

 private:
  MessageDispatcher* dispatcher_;
  std::function<void(const SFuncMsg&)> on_reply_;
};

}  // namespace unifab

#endif  // SRC_CORE_SFUNC_H_
