// UniFabric: the intermediate system stack of paper §5, assembled.
//
// Given a Cluster (hosts + FAM/FAA chassis on a fabric), the runtime
// provisions:
//   * a central fabric arbiter on a dedicated lightweight adapter, with
//     every FAM/FAA registered as a managed bandwidth resource (DP#4);
//   * an arbiter client and a migration agent per host, plus one agent per
//     FAM chassis controller (DP#1 executors);
//   * the elastic transaction engine wiring them together (DP#1);
//   * a unified heap per host, with tier 0 = host DRAM and one tier per FAM
//     chassis (DP#2);
//   * the idempotent-task runtime over all FAAs (DP#3a);
//   * a scalable-function runtime per FAA and a client per host (DP#3b).

#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/core/arbiter.h"
#include "src/core/collect.h"
#include "src/core/etrans.h"
#include "src/core/heap.h"
#include "src/core/itask.h"
#include "src/core/ofi.h"
#include "src/core/sfunc.h"
#include "src/core/tenant.h"
#include "src/fabric/switch/mem_agent.h"
#include "src/mem/coherent.h"
#include "src/topo/cluster.h"

namespace unifab {

struct RuntimeOptions {
  ArbiterConfig arbiter;
  HeapConfig heap;
  ITaskConfig itask;
  ETransRecoveryConfig etrans_recovery;
  CollectiveConfig collect;
  OfiConfig ofi;
  double fam_capacity_mbps = 8000.0;  // arbiter-managed ingress per FAM
  double faa_capacity_mbps = 8000.0;
  double host_capacity_mbps = 16000.0;
  std::uint64_t heap_local_bytes = 1ULL << 30;   // host-DRAM carve per heap
  std::uint64_t heap_fam_bytes = 4ULL << 30;     // per-FAM carve per heap

  // Switch-resident memory control (DESIGN.md §8): provision a
  // SwitchMemAgent on its own control adapter, give every host adapter a
  // translation cache plus a SwitchMemClient, and attach each heap to it —
  // heap accesses then resolve placement through the fabric and migrations
  // commit at the switch. Off by default (the classic host-resident path).
  bool switch_mem = false;
  SwitchMemConfig switch_mem_cfg;
  TranslationCacheConfig xlat_cache;

  // Coherent shared-memory window (DESIGN.md §9): carve a CXL.cache-style
  // window out of FAM 0, run a CoherentDirectory (bounded snoop filter with
  // back-invalidation) at its expander, and give every host a CoherentPort.
  // CohPtr<T> objects allocated from the window are then hardware-coherent
  // across hosts. Off by default (no window, goldens untouched).
  bool coherent_window = false;
  CoherentConfig coherent;
  std::uint64_t coherent_window_bytes = 1ULL << 20;
};

class UniFabricRuntime {
 public:
  UniFabricRuntime(Cluster* cluster, const RuntimeOptions& options);

  UniFabricRuntime(const UniFabricRuntime&) = delete;
  UniFabricRuntime& operator=(const UniFabricRuntime&) = delete;

  Cluster* cluster() { return cluster_; }
  FabricArbiter* arbiter() { return arbiter_.get(); }
  ArbiterClient* arbiter_client(int host) {
    return arbiter_clients_[static_cast<std::size_t>(host)].get();
  }
  ETransEngine* etrans() { return etrans_.get(); }
  MigrationAgent* host_agent(int host) {
    return host_agents_[static_cast<std::size_t>(host)].get();
  }
  MigrationAgent* fam_agent(int fam) { return fam_agents_[static_cast<std::size_t>(fam)].get(); }
  // Push-enabled agent on each FAA's endpoint adapter: the executors
  // collective member-to-member traffic runs on. Not eTrans executor
  // candidates, so point-to-point transfer placement is unchanged.
  MigrationAgent* faa_agent(int faa) { return faa_agents_[static_cast<std::size_t>(faa)].get(); }
  CollectiveEngine* collect() { return collect_.get(); }
  // Libfabric-style facade over eTrans/eCollect (DESIGN.md §11). Always
  // provisioned; callers create endpoints on demand.
  OfiDomain* ofi() { return ofi_.get(); }
  UnifiedHeap* heap(int host) { return heaps_[static_cast<std::size_t>(host)].get(); }
  // Non-null only when RuntimeOptions::switch_mem is set.
  SwitchMemAgent* switch_mem_agent() { return switch_mem_agent_.get(); }
  SwitchMemClient* switch_mem_client(int host) {
    return switch_mem_clients_[static_cast<std::size_t>(host)].get();
  }
  // Non-null only when RuntimeOptions::coherent_window is set.
  CoherentDirectory* coherent_directory() { return coherent_directory_.get(); }
  CoherentWindow* coherent_window() { return coherent_window_.get(); }
  CoherentPort* coherent_port(int host) {
    return coherent_ports_[static_cast<std::size_t>(host)].get();
  }
  ITaskRuntime* itasks() { return itasks_.get(); }
  // Builds (and owns) a multi-tenant workload engine driving this runtime
  // from a parsed scenario; call TenantEngine::Start to begin arrivals.
  // Replaces any previously attached engine.
  TenantEngine* AttachTenants(const ScenarioSpec& spec);
  TenantEngine* tenants() { return tenants_.get(); }
  ScalableFunctionRuntime* sfunc(int faa) { return sfuncs_[static_cast<std::size_t>(faa)].get(); }
  SFuncClient* sfunc_client(int host) {
    return sfunc_clients_[static_cast<std::size_t>(host)].get();
  }

 private:
  Cluster* cluster_;
  RuntimeOptions options_;
  MessageDispatcher* arbiter_dispatcher_ = nullptr;  // owned via adapter below
  std::unique_ptr<MessageDispatcher> arbiter_dispatcher_storage_;
  std::unique_ptr<FabricArbiter> arbiter_;
  std::vector<std::unique_ptr<ArbiterClient>> arbiter_clients_;
  std::vector<std::unique_ptr<ArbiterClient>> fam_arbiter_clients_;
  std::vector<std::unique_ptr<ArbiterClient>> faa_arbiter_clients_;
  std::unique_ptr<ETransEngine> etrans_;
  std::vector<std::unique_ptr<MigrationAgent>> host_agents_;
  std::vector<std::unique_ptr<MigrationAgent>> fam_agents_;
  std::vector<std::unique_ptr<MigrationAgent>> faa_agents_;
  std::unique_ptr<CollectiveEngine> collect_;
  std::unique_ptr<OfiDomain> ofi_;
  std::unique_ptr<MessageDispatcher> switch_mem_dispatcher_;
  std::unique_ptr<SwitchMemAgent> switch_mem_agent_;
  std::vector<std::unique_ptr<SwitchMemClient>> switch_mem_clients_;
  std::unique_ptr<CoherentDirectory> coherent_directory_;
  std::unique_ptr<CoherentWindow> coherent_window_;
  std::vector<std::unique_ptr<CoherentPort>> coherent_ports_;
  std::vector<std::unique_ptr<UnifiedHeap>> heaps_;
  std::unique_ptr<ITaskRuntime> itasks_;
  std::unique_ptr<TenantEngine> tenants_;
  std::vector<std::unique_ptr<ScalableFunctionRuntime>> sfuncs_;
  std::vector<std::unique_ptr<SFuncClient>> sfunc_clients_;
};

}  // namespace unifab

#endif  // SRC_CORE_RUNTIME_H_
