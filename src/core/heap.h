// Unified active heap: host-assisted, memory-node-type-conscious data
// placement (FCC DP#2).
//
// The heap instantiates memory bins from every reachable tier (host-local
// DRAM plus each fabric-attached node), allocates objects into size-class
// bins, profiles per-object access temperature, and transparently migrates
// objects between tiers — hot objects climb toward host DRAM (where the
// processor's caches accelerate them further), cold objects sink to fabric
// memory. Data movement uses eTrans, so migrations consume real fabric
// bandwidth and respect the central arbiter's throttling.
//
// Object *contents* are shadowed host-side so applications (examples/) can
// exchange real values while all timing flows through the simulated memory
// hierarchy.

#ifndef SRC_CORE_HEAP_H_
#define SRC_CORE_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/etrans.h"
#include "src/core/heap_profiler.h"
#include "src/mem/hierarchy.h"
#include "src/mem/memnode.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

class SwitchMemClient;  // src/fabric/switch/mem_agent.h

using ObjectId = std::uint64_t;
inline constexpr ObjectId kInvalidObject = 0;

// One memory tier the heap can place objects in.
struct MemTier {
  std::string name;
  MemoryNodeCaps caps;
  std::uint64_t base = 0;      // address-map base (as seen by host cores)
  std::uint64_t capacity = 0;  // bytes available to the heap
  int rank = 0;                // 0 = fastest; migration moves along ranks
};

struct HeapConfig {
  std::vector<std::uint32_t> size_classes = {64,    128,   256,    512,   1024,
                                             4096,  16384, 65536,  262144};
  Tick epoch_length = FromUs(100.0);
  double ewma_alpha = 0.5;            // temperature <- alpha*new + (1-alpha)*old
  double promote_threshold = 4.0;     // temperature that earns promotion
  double demote_threshold = 0.5;      // temperature that risks demotion
  double high_watermark = 0.9;        // tier occupancy that triggers demotion
  std::uint64_t migration_budget_bytes = 1 << 20;  // per epoch
  bool migration_enabled = true;
  ProfilerConfig profiler;  // sharded temperature profiling (heap_profiler.h)
};

struct ObjectInfo {
  ObjectId id = kInvalidObject;
  std::uint64_t addr = 0;
  // Fabric-virtual address of the object's range when switch-resident
  // memory control is attached (0 otherwise). Stable across migrations;
  // `addr` tracks the current physical placement.
  std::uint64_t vaddr = 0;
  std::uint32_t size = 0;
  int tier = -1;
  double temperature = 0.0;
  std::uint64_t epoch_accesses = 0;
  bool migrating = false;
};

// Synchronous outcome of Migrate(); the async `done` callback still reports
// whether the copy (and, under switch-mem, the commit) went through.
enum class MigrateResult : std::uint8_t {
  kStarted,       // migration admitted; `done` will fire
  kBusy,          // a migration of this object is already in flight
  kNoSuchObject,  // unknown/freed id
  kSameTier,      // src == dst
  kNoSpace,       // destination tier cannot carve the block
};

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocations = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t bytes_migrated = 0;
  std::uint64_t migrations_failed = 0;  // eTrans aborted; object rolled back to src
  std::uint64_t epochs = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Pluggable epoch policy: returns objects to move this epoch.
class MigrationPolicy {
 public:
  struct Move {
    ObjectId object;
    int dst_tier;
  };

  virtual ~MigrationPolicy() = default;
  virtual std::vector<Move> Decide(const std::vector<ObjectInfo>& objects,
                                   const std::vector<MemTier>& tiers,
                                   const std::vector<std::uint64_t>& tier_used,
                                   const HeapConfig& config) = 0;
};

// Default: temperature-driven promote/demote along tier ranks.
class TemperaturePolicy : public MigrationPolicy {
 public:
  std::vector<Move> Decide(const std::vector<ObjectInfo>& objects,
                           const std::vector<MemTier>& tiers,
                           const std::vector<std::uint64_t>& tier_used,
                           const HeapConfig& config) override;
};

class UnifiedHeap {
 public:
  // `core` performs the timed load/store path; `agent`/`etrans` move data.
  UnifiedHeap(Engine* engine, const HeapConfig& config, MemoryHierarchy* core,
              MigrationAgent* agent, ETransEngine* etrans);

  // Tiers must be added before the first allocation; rank 0 first.
  int AddTier(const MemTier& tier);

  // Allocates `size` bytes; `tier_hint` < 0 picks the fastest tier with
  // space. Returns kInvalidObject when every allowed tier is full.
  ObjectId Allocate(std::uint32_t size, int tier_hint = -1);
  void Free(ObjectId id);

  // Timed whole-object access. Completion fires when the object's bytes are
  // readable/durable in the current placement.
  void Read(ObjectId id, std::function<void()> done);
  void Write(ObjectId id, std::function<void()> done);

  // Shadow content access (untimed; pair with Read/Write for timing).
  std::vector<std::byte>& Shadow(ObjectId id);

  // Explicit migration (the epoch policy calls this too). Rejections
  // (anything but kStarted) fire `done(false)` before returning so callers
  // that only watch the callback keep working.
  MigrateResult Migrate(ObjectId id, int dst_tier, std::function<void(bool ok)> done);

  // Delegates translation and migration commits to a switch-resident memory
  // agent: objects get stable fabric-virtual addresses, timed accesses
  // resolve placement through the adapter's translation cache, and a
  // migration's source block is only reclaimed once the agent has committed
  // the new placement and every cached translation is invalidated. Must be
  // called before the first allocation. `va_base` anchors this heap's
  // virtual range (heaps sharing an agent need disjoint bases).
  void AttachSwitchMem(SwitchMemClient* client, std::uint64_t va_base);

  // Runs one profiling/migration epoch now. Normally invoked lazily when
  // epoch_length has elapsed, checked on each access.
  void RunEpoch();

  void SetPolicy(std::unique_ptr<MigrationPolicy> policy) { policy_ = std::move(policy); }

  ObjectInfo Info(ObjectId id) const;
  int TierOf(ObjectId id) const;
  std::uint64_t TierUsed(int tier) const { return tier_used_[static_cast<std::size_t>(tier)]; }
  const MemTier& Tier(int tier) const { return tiers_[static_cast<std::size_t>(tier)]; }
  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  const HeapStats& stats() const { return stats_; }
  std::size_t live_objects() const { return objects_.size(); }
  const ShardedTemperatureProfiler& profiler() const { return profiler_; }
  SwitchMemClient* switch_mem() const { return switch_mem_; }

 private:
  struct Bin {
    std::uint32_t size_class;
    std::vector<std::uint64_t> free_list;
  };

  struct TierState {
    std::vector<Bin> bins;      // one per size class
    std::uint64_t bump = 0;     // bytes carved from the tier so far
  };

  struct Object {
    ObjectInfo info;
    std::vector<std::byte> shadow;
  };

  // Tracks one in-flight migration; the audit check "migration_registry"
  // reconciles this registry against tier_migrating_src_ every event.
  struct InFlightMigration {
    std::uint64_t vaddr = 0;
    int src_tier = -1;
    int dst_tier = -1;
    std::uint32_t size_class = 0;
    bool freed = false;  // Free() arrived mid-migration; finish then reap
  };

  std::uint32_t ClassFor(std::uint32_t size) const;
  std::uint64_t CarveBlock(int tier, std::uint32_t size_class);  // 0 on failure
  void ReleaseBlock(int tier, std::uint32_t size_class, std::uint64_t addr);
  void Touch(Object& obj);
  void MaybeRunEpoch();
  Segment SegmentFor(const Object& obj) const;
  void BeginClaim(ObjectId id, const InFlightMigration& claim);
  void FinishClaim(ObjectId id);

  Engine* engine_;
  HeapConfig config_;
  MemoryHierarchy* core_;
  MigrationAgent* agent_;
  ETransEngine* etrans_;
  std::vector<MemTier> tiers_;
  std::vector<TierState> tier_state_;
  std::vector<std::uint64_t> tier_used_;
  // Size-class bytes whose source block is still carved for an in-flight
  // migration out of each tier (the object itself already counts at its
  // eagerly recorded destination). Balances the per-tier byte conservation
  // the auditor checks.
  std::vector<std::uint64_t> tier_migrating_src_;
  std::uint64_t migrations_in_flight_ = 0;
  std::unordered_map<ObjectId, InFlightMigration> inflight_;
  std::unordered_map<ObjectId, Object> objects_;
  std::unique_ptr<MigrationPolicy> policy_;
  ShardedTemperatureProfiler profiler_;
  SwitchMemClient* switch_mem_ = nullptr;
  std::uint64_t va_base_ = 0;
  std::uint64_t va_bump_ = 0;  // monotonic; vaddrs are never reused
  ObjectId next_id_ = 1;
  Tick next_epoch_at_ = 0;
  HeapStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;  // after the state the checks read

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_CORE_HEAP_H_
