#include "src/core/runtime.h"

namespace unifab {
namespace {

// Control-service logic (arbiter, switch-mem agent) sits on-die next to a
// switch: cheap processing, one dedicated port.
AdapterConfig ControlAdapterConfig() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(25.0);
  cfg.response_proc_latency = FromNs(25.0);
  cfg.max_outstanding = 256;
  return cfg;
}

}  // namespace

UniFabricRuntime::UniFabricRuntime(Cluster* cluster, const RuntimeOptions& options)
    : cluster_(cluster), options_(options) {
  Engine* engine = &cluster->engine();
  FabricInterconnect& fabric = cluster->fabric();

  // --- Central arbiter on its own lightweight adapter (DP#4). -----------
  HostAdapter* arb_adapter =
      cluster->AttachControlAdapter(ControlAdapterConfig(), "arbiter/adapter");
  arbiter_dispatcher_storage_ = std::make_unique<MessageDispatcher>(arb_adapter);
  arbiter_dispatcher_ = arbiter_dispatcher_storage_.get();
  arbiter_ = std::make_unique<FabricArbiter>(engine, options.arbiter, arbiter_dispatcher_);
  for (const auto& sw : fabric.switches()) {
    arbiter_->AttachSwitch(sw.get());
  }
  for (int f = 0; f < cluster->num_fams(); ++f) {
    arbiter_->RegisterResource(cluster->fam(f)->id(), options.fam_capacity_mbps);
  }
  for (int a = 0; a < cluster->num_faas(); ++a) {
    arbiter_->RegisterResource(cluster->faa(a)->id(), options.faa_capacity_mbps);
  }
  // Host DRAM ingress is also a managed resource: promotions from fabric
  // memory toward hosts are throttled like any other bulk movement.
  for (int h = 0; h < cluster->num_hosts(); ++h) {
    arbiter_->RegisterResource(cluster->host(h)->id(), options.host_capacity_mbps);
  }

  // --- eTrans engine with agents at every host and FAM controller. ------
  etrans_ = std::make_unique<ETransEngine>(engine, options.etrans_recovery);
  // Retries ask the fabric manager to re-resolve routes first, so a redrive
  // takes whatever redundant path survived the failure. The fabric outlives
  // the runtime (the cluster owns it), so capturing it by reference is safe.
  etrans_->SetRerouteHook([&fabric] { fabric.ConfigureRouting(); });
  for (int h = 0; h < cluster->num_hosts(); ++h) {
    HostServer* host = cluster->host(h);
    arbiter_clients_.push_back(std::make_unique<ArbiterClient>(
        engine, options.arbiter, host->dispatcher(), arbiter_->fabric_id()));
    host_agents_.push_back(std::make_unique<MigrationAgent>(
        engine, host->dispatcher(), host->local_dram(), arbiter_clients_.back().get(),
        host->name() + "/agent"));
    etrans_->RegisterAgent(host->id(), host_agents_.back().get());
  }
  for (int f = 0; f < cluster->num_fams(); ++f) {
    FamChassis* fam = cluster->fam(f);
    fam_arbiter_clients_.push_back(std::make_unique<ArbiterClient>(
        engine, options.arbiter, fam->dispatcher(), arbiter_->fabric_id()));
    fam_agents_.push_back(std::make_unique<MigrationAgent>(
        engine, fam->dispatcher(), fam->dram(), fam_arbiter_clients_.back().get(),
        fam->name() + "/agent"));
    etrans_->RegisterAgent(fam->id(), fam_agents_.back().get());
  }
  // Push-enabled agents on the FAA endpoint adapters (collective members
  // move data over their own uplinks). Registered message-only so eTrans
  // point-to-point executor placement stays exactly as before.
  for (int a = 0; a < cluster->num_faas(); ++a) {
    FaaChassis* faa = cluster->faa(a);
    faa_arbiter_clients_.push_back(std::make_unique<ArbiterClient>(
        engine, options.arbiter, faa->dispatcher(), arbiter_->fabric_id()));
    faa_agents_.push_back(std::make_unique<MigrationAgent>(
        engine, faa->dispatcher(), faa->scratch(), faa_arbiter_clients_.back().get(),
        faa->name() + "/agent"));
    faa_agents_.back()->EnablePush();
    etrans_->RegisterAgent(faa->id(), faa_agents_.back().get(), /*executor_candidate=*/false);
  }

  // --- Collective engine over every agent-backed node (DP#1, multi-party).
  CollectiveConfig collect_cfg = options.collect;
  if (cluster->num_pods() > 1) {
    // Pod clusters: teach the planner's two-tier cost model what a bridge
    // hop costs, so kAuto weighs Ethernet alpha/beta when ranking the
    // hierarchical schedule against flat ring/tree. Explicit caller values
    // win over the derived ones.
    const BridgeConfig& bridge = cluster->config().bridge;
    if (collect_cfg.plan.bridge_alpha_us == 0.0) {
      collect_cfg.plan.bridge_alpha_us = ToUs(bridge.propagation);
    }
    if (collect_cfg.plan.bridge_mbps == 0.0) {
      collect_cfg.plan.bridge_mbps = bridge.ToLinkConfig().BytesPerSec() / 1e6;
    }
  }
  collect_ = std::make_unique<CollectiveEngine>(engine, etrans_.get(), &fabric, collect_cfg);
  for (int h = 0; h < cluster->num_hosts(); ++h) {
    collect_->RegisterMember(cluster->host(h)->id(),
                             host_agents_[static_cast<std::size_t>(h)].get());
  }
  for (int f = 0; f < cluster->num_fams(); ++f) {
    // FAM chassis own their fabric domain (and DES shard): their agents'
    // grant callbacks fire on that shard, so the collective engine must not
    // drive them directly — they serve as delegated executors only.
    collect_->RegisterMember(cluster->fam(f)->id(),
                             fam_agents_[static_cast<std::size_t>(f)].get(),
                             /*shard_local=*/false);
  }
  for (int a = 0; a < cluster->num_faas(); ++a) {
    collect_->RegisterMember(cluster->faa(a)->id(),
                             faa_agents_[static_cast<std::size_t>(a)].get());
  }
  if (cluster->num_hosts() > 0) {
    collect_->SetFallbackAgent(host_agents_[0].get());
  }

  // --- OFI facade over eTrans + eCollect (DESIGN.md §11). ----------------
  ofi_ = std::make_unique<OfiDomain>(engine, etrans_.get(), collect_.get(), options.ofi);

  // --- Switch-resident memory control (DESIGN.md §8, opt-in). ------------
  if (options.switch_mem) {
    HostAdapter* sm_adapter =
        cluster->AttachControlAdapter(ControlAdapterConfig(), "switch_mem/adapter");
    switch_mem_dispatcher_ = std::make_unique<MessageDispatcher>(sm_adapter);
    switch_mem_agent_ = std::make_unique<SwitchMemAgent>(engine, options.switch_mem_cfg,
                                                         switch_mem_dispatcher_.get());
  }

  // --- Coherent shared-memory window (DESIGN.md §9, opt-in). -------------
  if (options.coherent_window && cluster->num_fams() > 0 && cluster->num_hosts() > 0) {
    FamChassis* fam = cluster->fam(0);
    const std::uint64_t win_base =
        cluster->FamBase(0) + fam->expander()->CreateCoherentWindow(options.coherent_window_bytes);
    // The directory is device logic: it runs on the chassis's own engine
    // shard (its deadline events must be locally cancellable) and speaks
    // through the chassis FEA dispatcher.
    coherent_directory_ = std::make_unique<CoherentDirectory>(
        fam->engine(), options.coherent, fam->dispatcher(), fam->expander(), fam->name());
    coherent_window_ = std::make_unique<CoherentWindow>(coherent_directory_.get(), win_base,
                                                        options.coherent_window_bytes);
    for (int h = 0; h < cluster->num_hosts(); ++h) {
      HostServer* host = cluster->host(h);
      coherent_ports_.push_back(std::make_unique<CoherentPort>(
          engine, options.coherent, host->dispatcher(), coherent_directory_.get(),
          host->name()));
    }
  }

  // --- Unified heap per host (DP#2). -------------------------------------
  for (int h = 0; h < cluster->num_hosts(); ++h) {
    HostServer* host = cluster->host(h);
    auto heap = std::make_unique<UnifiedHeap>(engine, options.heap, host->core(0),
                                              host_agents_[static_cast<std::size_t>(h)].get(),
                                              etrans_.get());
    // Tier 0: a slice of host-local DRAM. Heaps carve disjoint slices per
    // host implicitly because each heap only talks to its own host DRAM.
    MemTier local;
    local.name = host->name() + "/dram";
    local.caps.type = MemoryNodeType::kHostLocal;
    local.caps.node = host->id();
    local.caps.capacity_bytes = options.heap_local_bytes;
    local.caps.typical_read_latency = FromNs(111.7);
    local.caps.typical_write_latency = FromNs(119.3);
    local.base = 1ULL << 28;  // above workload scratch, inside local range
    local.capacity = options.heap_local_bytes;
    local.rank = 0;
    heap->AddTier(local);

    // One tier per FAM chassis (CPU-less NUMA expanders).
    for (int f = 0; f < cluster->num_fams(); ++f) {
      FamChassis* fam = cluster->fam(f);
      MemTier tier;
      tier.name = fam->name();
      tier.caps = fam->expander()->Caps(fam->id());
      tier.base = cluster->FamBase(f);
      tier.capacity = options.heap_fam_bytes;
      tier.rank = f + 1;
      heap->AddTier(tier);
    }
    if (switch_mem_agent_ != nullptr) {
      // The translation cache lives on the host's fabric adapter; the
      // client speaks to the agent over the host's existing dispatcher.
      TranslationCache* cache = host->fha()->EnableTranslationCache(options.xlat_cache);
      switch_mem_clients_.push_back(
          std::make_unique<SwitchMemClient>(engine, options.switch_mem_cfg, host->dispatcher(),
                                            switch_mem_agent_.get(), cache));
      switch_mem_agent_->AttachClientForAudit(switch_mem_clients_.back().get());
      // Disjoint per-host virtual ranges under one shared agent.
      heap->AttachSwitchMem(switch_mem_clients_.back().get(),
                            (1ULL << 50) + static_cast<std::uint64_t>(h) * (1ULL << 40));
    }
    heaps_.push_back(std::move(heap));
  }

  // --- Idempotent tasks over all FAAs (DP#3a). ---------------------------
  if (cluster->num_faas() > 0 && cluster->num_hosts() > 0) {
    itasks_ = std::make_unique<ITaskRuntime>(engine, heaps_[0].get(), etrans_.get(),
                                             host_agents_[0].get(), options.itask);
    for (int a = 0; a < cluster->num_faas(); ++a) {
      itasks_->AddWorker(cluster->faa(a));
    }
  }

  // --- Scalable functions (DP#3b). ---------------------------------------
  for (int a = 0; a < cluster->num_faas(); ++a) {
    sfuncs_.push_back(std::make_unique<ScalableFunctionRuntime>(engine, cluster->faa(a)));
  }
  for (int h = 0; h < cluster->num_hosts(); ++h) {
    sfunc_clients_.push_back(std::make_unique<SFuncClient>(cluster->host(h)->dispatcher()));
  }
}

TenantEngine* UniFabricRuntime::AttachTenants(const ScenarioSpec& spec) {
  tenants_ = std::make_unique<TenantEngine>(this, spec);
  return tenants_.get();
}

}  // namespace unifab
