#include "src/core/collect_algo.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {
namespace {

int CeilLog2(int n) {
  int l = 0;
  while ((1 << l) < n) {
    ++l;
  }
  return l;
}

// Byte-exact partition of [0, bytes) into n slices: slice s spans
// [Start(s), Start(s+1)). Uneven remainders land deterministically.
std::uint64_t SliceStart(std::uint64_t bytes, int n, int s) {
  return bytes * static_cast<std::uint64_t>(s) / static_cast<std::uint64_t>(n);
}

void AddTransfer(CollectiveStep& step, int src, int dst, std::uint64_t src_off,
                 std::uint64_t dst_off, std::uint64_t bytes) {
  if (bytes == 0 || src == dst) {
    return;  // zero-byte or self moves would wedge an eTrans job; plan none
  }
  step.transfers.push_back(StepTransfer{src, dst, src_off, dst_off, bytes});
}

// Appends `step` depending on the previous appended step (round barrier).
int AppendRound(CollectiveSchedule& sched, CollectiveStep step, int dep) {
  if (dep >= 0) {
    step.deps.push_back(dep);
  }
  sched.steps.push_back(std::move(step));
  return static_cast<int>(sched.steps.size()) - 1;
}

// Binomial-tree fan-out rounds, highest bit last: in round r every virtual
// rank v < 2^r forwards the range to v + 2^r. `dep0` gates round 0.
int AppendBinomialBroadcast(CollectiveSchedule& sched, int n, int root, std::uint64_t offset,
                            std::uint64_t bytes, int dep0) {
  const int rounds = CeilLog2(n);
  int dep = dep0;
  for (int r = 0; r < rounds; ++r) {
    CollectiveStep step;
    for (int v = 0; v < (1 << r); ++v) {
      const int peer = v + (1 << r);
      if (peer >= n) {
        break;
      }
      AddTransfer(step, (v + root) % n, (peer + root) % n, offset, offset, bytes);
    }
    dep = AppendRound(sched, std::move(step), dep);
  }
  return dep;
}

// Binomial-tree combining rounds (recursive halving): in round r every
// virtual rank v with v mod 2^(r+1) == 2^r pushes its partial into v - 2^r.
int AppendBinomialReduce(CollectiveSchedule& sched, int n, int root, std::uint64_t bytes) {
  const int rounds = CeilLog2(n);
  int dep = -1;
  for (int r = 0; r < rounds; ++r) {
    CollectiveStep step;
    step.reducing = true;
    for (int v = (1 << r); v < n; v += (1 << (r + 1))) {
      AddTransfer(step, (v + root) % n, (v - (1 << r) + root) % n, 0, 0, bytes);
    }
    dep = AppendRound(sched, std::move(step), dep);
  }
  return dep;
}

// Ring reduce-scatter: n-1 rounds; in round r member i pushes slice
// (i - r mod n) of the shared [0, bytes) buffer into its successor, which
// combines it. Afterwards member (s + n - 1) mod n holds complete slice s.
int AppendRingReduceScatter(CollectiveSchedule& sched, int n, std::uint64_t bytes) {
  int dep = -1;
  for (int r = 0; r < n - 1; ++r) {
    CollectiveStep step;
    step.reducing = true;
    for (int i = 0; i < n; ++i) {
      const int s = (i - r + n) % n;
      const std::uint64_t off = SliceStart(bytes, n, s);
      AddTransfer(step, i, (i + 1) % n, off, off, SliceStart(bytes, n, s + 1) - off);
    }
    dep = AppendRound(sched, std::move(step), dep);
  }
  return dep;
}

// Binomial fan-out over an explicit member-index list (members[0] is the
// root); the list-based twin of AppendBinomialBroadcast for leader groups
// and pod-local broadcasts.
int AppendBinomialBroadcastOver(CollectiveSchedule& sched, const std::vector<int>& members,
                                std::uint64_t bytes, int dep0) {
  const int m = static_cast<int>(members.size());
  const int rounds = CeilLog2(m);
  int dep = dep0;
  for (int r = 0; r < rounds; ++r) {
    CollectiveStep step;
    for (int v = 0; v < (1 << r); ++v) {
      const int peer = v + (1 << r);
      if (peer >= m) {
        break;
      }
      AddTransfer(step, members[static_cast<std::size_t>(v)],
                  members[static_cast<std::size_t>(peer)], 0, 0, bytes);
    }
    dep = AppendRound(sched, std::move(step), dep);
  }
  return dep;
}

// Groups member indices by pod in first-appearance order (deterministic for
// any pod-id values); groups[g][0] is pod g's leader.
std::vector<std::vector<int>> GroupByPod(int n, const std::vector<int>& pod_of) {
  std::vector<std::vector<int>> groups;
  std::vector<std::pair<int, std::size_t>> seen;  // pod id -> group ordinal
  for (int i = 0; i < n; ++i) {
    const int pod = pod_of[static_cast<std::size_t>(i)];
    std::size_t g = groups.size();
    for (const auto& [id, ordinal] : seen) {
      if (id == pod) {
        g = ordinal;
        break;
      }
    }
    if (g == groups.size()) {
      seen.emplace_back(pod, g);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  return groups;
}

}  // namespace

const char* CollectiveOpName(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kBroadcast: return "broadcast";
    case CollectiveOp::kScatter: return "scatter";
    case CollectiveOp::kGather: return "gather";
    case CollectiveOp::kReduce: return "reduce";
    case CollectiveOp::kAllGather: return "allgather";
    case CollectiveOp::kAllReduce: return "allreduce";
  }
  return "?";
}

const char* CollectiveAlgorithmName(CollectiveAlgorithm algo) {
  switch (algo) {
    case CollectiveAlgorithm::kAuto: return "auto";
    case CollectiveAlgorithm::kRing: return "ring";
    case CollectiveAlgorithm::kBinomialTree: return "tree";
    case CollectiveAlgorithm::kLinear: return "linear";
    case CollectiveAlgorithm::kHierarchical: return "hierarchical";
  }
  return "?";
}

std::uint64_t CollectiveSchedule::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& step : steps) {
    for (const auto& t : step.transfers) {
      total += t.bytes;
    }
  }
  return total;
}

int CollectiveSchedule::DepthSteps() const {
  std::vector<int> depth(steps.size(), 1);
  int max_depth = steps.empty() ? 0 : 1;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (int dep : steps[i].deps) {
      assert(dep >= 0 && dep < static_cast<int>(i) && "schedule deps must point backwards");
      depth[i] = std::max(depth[i], depth[static_cast<std::size_t>(dep)] + 1);
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

CollectiveSchedule BuildBroadcast(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes,
                                  const CollectivePlanConfig& config) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kBroadcast;
  sched.algo = algo;
  sched.num_members = n;
  if (n <= 1 || bytes == 0) {
    return sched;
  }
  if (algo == CollectiveAlgorithm::kRing) {
    // Pipelined chunk relay around the ring: chunk c may ride hop h as soon
    // as it finished hop h-1, so C chunks overlap across the n-1 hops.
    const std::uint64_t want =
        config.chunk_bytes == 0 ? 1 : (bytes + config.chunk_bytes - 1) / config.chunk_bytes;
    const int chunks = static_cast<int>(std::clamp<std::uint64_t>(
        want, 1, static_cast<std::uint64_t>(std::max(1, config.pipeline_chunks))));
    std::vector<int> prev_hop(static_cast<std::size_t>(chunks), -1);
    for (int h = 0; h < n - 1; ++h) {
      for (int c = 0; c < chunks; ++c) {
        const std::uint64_t off = SliceStart(bytes, chunks, c);
        CollectiveStep step;
        AddTransfer(step, (root + h) % n, (root + h + 1) % n, off, off,
                    SliceStart(bytes, chunks, c + 1) - off);
        prev_hop[static_cast<std::size_t>(c)] =
            AppendRound(sched, std::move(step), prev_hop[static_cast<std::size_t>(c)]);
      }
    }
    return sched;
  }
  sched.algo = CollectiveAlgorithm::kBinomialTree;
  AppendBinomialBroadcast(sched, n, root, 0, bytes, -1);
  return sched;
}

CollectiveSchedule BuildScatter(int n, int root, std::uint64_t slice_bytes) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kScatter;
  sched.algo = CollectiveAlgorithm::kLinear;
  sched.num_members = n;
  CollectiveStep step;
  for (int i = 0; i < n; ++i) {
    AddTransfer(step, root, i, static_cast<std::uint64_t>(i) * slice_bytes, 0, slice_bytes);
  }
  if (!step.transfers.empty()) {
    sched.steps.push_back(std::move(step));
  }
  return sched;
}

CollectiveSchedule BuildGather(int n, int root, std::uint64_t slice_bytes) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kGather;
  sched.algo = CollectiveAlgorithm::kLinear;
  sched.num_members = n;
  CollectiveStep step;
  for (int i = 0; i < n; ++i) {
    AddTransfer(step, i, root, 0, static_cast<std::uint64_t>(i) * slice_bytes, slice_bytes);
  }
  if (!step.transfers.empty()) {
    sched.steps.push_back(std::move(step));
  }
  return sched;
}

CollectiveSchedule BuildReduce(CollectiveAlgorithm algo, int n, int root, std::uint64_t bytes) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kReduce;
  sched.algo = algo;
  sched.num_members = n;
  if (n <= 1 || bytes == 0) {
    return sched;
  }
  if (algo == CollectiveAlgorithm::kRing) {
    // Reduce-scatter leaves complete slice s at member (s + n - 1) mod n;
    // one fan-in round then lands every foreign slice at the root.
    const int dep = AppendRingReduceScatter(sched, n, bytes);
    CollectiveStep gather;
    for (int i = 0; i < n; ++i) {
      const int s = (i + 1) % n;
      const std::uint64_t off = SliceStart(bytes, n, s);
      AddTransfer(gather, i, root, off, off, SliceStart(bytes, n, s + 1) - off);
    }
    AppendRound(sched, std::move(gather), dep);
    return sched;
  }
  sched.algo = CollectiveAlgorithm::kBinomialTree;
  AppendBinomialReduce(sched, n, root, bytes);
  return sched;
}

CollectiveSchedule BuildAllGather(CollectiveAlgorithm algo, int n, std::uint64_t slice_bytes) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kAllGather;
  sched.algo = algo;
  sched.num_members = n;
  if (n <= 1 || slice_bytes == 0) {
    return sched;
  }
  if (algo == CollectiveAlgorithm::kRing) {
    // Round r: member i forwards the slice it received in round r-1 (its
    // own in round 0) to its successor; n-1 rounds circulate every slice.
    int dep = -1;
    for (int r = 0; r < n - 1; ++r) {
      CollectiveStep step;
      for (int i = 0; i < n; ++i) {
        const int s = (i - r + n) % n;
        const std::uint64_t off = static_cast<std::uint64_t>(s) * slice_bytes;
        AddTransfer(step, i, (i + 1) % n, off, off, slice_bytes);
      }
      dep = AppendRound(sched, std::move(step), dep);
    }
    return sched;
  }
  // Tree: fan every slice into member 0, then binomial-broadcast the whole
  // n-slice buffer.
  sched.algo = CollectiveAlgorithm::kBinomialTree;
  CollectiveStep gather;
  for (int i = 1; i < n; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * slice_bytes;
    AddTransfer(gather, i, 0, off, off, slice_bytes);
  }
  const int dep = AppendRound(sched, std::move(gather), -1);
  AppendBinomialBroadcast(sched, n, 0, 0, static_cast<std::uint64_t>(n) * slice_bytes, dep);
  return sched;
}

CollectiveSchedule BuildAllReduce(CollectiveAlgorithm algo, int n, std::uint64_t bytes) {
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kAllReduce;
  sched.algo = algo;
  sched.num_members = n;
  if (n <= 1 || bytes == 0) {
    return sched;
  }
  if (algo == CollectiveAlgorithm::kRing) {
    // Classic bandwidth-optimal form: reduce-scatter then allgather, each
    // member moving 2 * bytes * (n-1)/n total over its own uplink.
    int dep = AppendRingReduceScatter(sched, n, bytes);
    for (int r = 0; r < n - 1; ++r) {
      CollectiveStep step;
      for (int i = 0; i < n; ++i) {
        const int s = (i + 1 - r + n) % n;
        const std::uint64_t off = SliceStart(bytes, n, s);
        AddTransfer(step, i, (i + 1) % n, off, off, SliceStart(bytes, n, s + 1) - off);
      }
      dep = AppendRound(sched, std::move(step), dep);
    }
    return sched;
  }
  sched.algo = CollectiveAlgorithm::kBinomialTree;
  const int dep = AppendBinomialReduce(sched, n, /*root=*/0, bytes);
  AppendBinomialBroadcast(sched, n, /*root=*/0, 0, bytes, dep);
  return sched;
}

CollectiveSchedule BuildHierarchicalAllReduce(int n, std::uint64_t bytes,
                                              const std::vector<int>& pod_of) {
  assert(static_cast<int>(pod_of.size()) == n && "pod_of must cover every member");
  CollectiveSchedule sched;
  sched.op = CollectiveOp::kAllReduce;
  sched.algo = CollectiveAlgorithm::kHierarchical;
  sched.num_members = n;
  if (n <= 1 || bytes == 0) {
    return sched;
  }
  const std::vector<std::vector<int>> groups = GroupByPod(n, pod_of);
  const int num_pods = static_cast<int>(groups.size());
  if (num_pods <= 1) {
    // One pod: hierarchy adds nothing; hand back the bandwidth-optimal
    // flat form (and report it honestly as kRing).
    return BuildAllReduce(CollectiveAlgorithm::kRing, n, bytes);
  }

  // Phase 1, independently per pod: ring reduce-scatter over the pod's m
  // members, then one fan-in round landing every complete slice at the pod
  // leader, which afterwards holds the whole pod-reduced buffer.
  std::vector<int> pod_tail(static_cast<std::size_t>(num_pods), -1);
  for (int g = 0; g < num_pods; ++g) {
    const std::vector<int>& mem = groups[static_cast<std::size_t>(g)];
    const int m = static_cast<int>(mem.size());
    if (m == 1) {
      continue;  // the leader already holds its pod's only contribution
    }
    int dep = -1;
    for (int r = 0; r < m - 1; ++r) {
      CollectiveStep step;
      step.reducing = true;
      for (int i = 0; i < m; ++i) {
        const int s = (i - r + m) % m;
        const std::uint64_t off = SliceStart(bytes, m, s);
        AddTransfer(step, mem[static_cast<std::size_t>(i)],
                    mem[static_cast<std::size_t>((i + 1) % m)], off, off,
                    SliceStart(bytes, m, s + 1) - off);
      }
      dep = AppendRound(sched, std::move(step), dep);
    }
    CollectiveStep gather;
    for (int i = 0; i < m; ++i) {
      const int s = (i + 1) % m;  // reduce-scatter left slice s complete here
      const std::uint64_t off = SliceStart(bytes, m, s);
      AddTransfer(gather, mem[static_cast<std::size_t>(i)], mem[0], off, off,
                  SliceStart(bytes, m, s + 1) - off);
    }
    pod_tail[static_cast<std::size_t>(g)] = AppendRound(sched, std::move(gather), dep);
  }

  // Phase 2: binomial-tree reduce among the pod leaders (the only members
  // that cross bridges), rooted at pod 0's leader. Round 0 waits for every
  // pod's phase-1 tail — conservative, but a leader may not forward a
  // partial that is still being assembled.
  std::vector<int> leaders;
  leaders.reserve(static_cast<std::size_t>(num_pods));
  for (const auto& mem : groups) {
    leaders.push_back(mem[0]);
  }
  const int rounds = CeilLog2(num_pods);
  int dep = -1;
  for (int r = 0; r < rounds; ++r) {
    CollectiveStep step;
    step.reducing = true;
    for (int v = (1 << r); v < num_pods; v += (1 << (r + 1))) {
      AddTransfer(step, leaders[static_cast<std::size_t>(v)],
                  leaders[static_cast<std::size_t>(v - (1 << r))], 0, 0, bytes);
    }
    if (r == 0) {
      for (int tail : pod_tail) {
        if (tail >= 0) {
          step.deps.push_back(tail);
        }
      }
    }
    dep = AppendRound(sched, std::move(step), dep);
  }

  // Phase 3: broadcast the global result — binomial among the leaders,
  // then binomial from each leader down into its pod.
  dep = AppendBinomialBroadcastOver(sched, leaders, bytes, dep);
  for (const auto& mem : groups) {
    if (mem.size() > 1) {
      AppendBinomialBroadcastOver(sched, mem, bytes, dep);
    }
  }
  return sched;
}

double EstimateCostUs(CollectiveOp op, CollectiveAlgorithm algo, int n, std::uint64_t bytes,
                      int span_hops, const CollectivePlanConfig& config) {
  if (n <= 1) {
    return 0.0;
  }
  const double alpha =
      config.step_overhead_us + static_cast<double>(std::max(span_hops, 0)) * config.hop_us;
  const double mbps = config.effective_mbps > 0.0 ? config.effective_mbps : 8000.0;
  const auto beta = [mbps](double b) { return b / mbps; };  // MB/s == bytes/us
  const double b = static_cast<double>(bytes);
  const double nn = static_cast<double>(n);
  const int logn = CeilLog2(n);

  switch (op) {
    case CollectiveOp::kScatter:
    case CollectiveOp::kGather:
      return alpha + beta((nn - 1.0) * b);
    case CollectiveOp::kBroadcast: {
      if (algo == CollectiveAlgorithm::kRing) {
        const double chunks = std::max(
            1.0, std::min(static_cast<double>(std::max(1, config.pipeline_chunks)),
                          config.chunk_bytes > 0 ? b / config.chunk_bytes : 1.0));
        return (nn - 1.0 + chunks - 1.0) * (alpha + beta(b / chunks));
      }
      return logn * (alpha + beta(b));
    }
    case CollectiveOp::kReduce: {
      if (algo == CollectiveAlgorithm::kRing) {
        return (nn - 1.0) * (alpha + beta(b / nn)) + alpha + beta(b * (nn - 1.0) / nn);
      }
      return logn * (alpha + beta(b));
    }
    case CollectiveOp::kAllGather: {
      if (algo == CollectiveAlgorithm::kRing) {
        return (nn - 1.0) * (alpha + beta(b));
      }
      return alpha + beta((nn - 1.0) * b) + logn * (alpha + beta(nn * b));
    }
    case CollectiveOp::kAllReduce: {
      if (algo == CollectiveAlgorithm::kRing) {
        return 2.0 * (nn - 1.0) * (alpha + beta(b / nn));
      }
      return 2.0 * logn * (alpha + beta(b));
    }
  }
  return 0.0;
}

CollectiveAlgorithm ChooseAlgorithm(CollectiveOp op, int n, std::uint64_t bytes, int span_hops,
                                    const CollectivePlanConfig& config) {
  if (op == CollectiveOp::kScatter || op == CollectiveOp::kGather) {
    return CollectiveAlgorithm::kLinear;
  }
  if (n <= 2) {
    // Degenerate groups: ring and tree coincide; keep the fewer-steps form.
    return CollectiveAlgorithm::kBinomialTree;
  }
  const double ring = EstimateCostUs(op, CollectiveAlgorithm::kRing, n, bytes, span_hops, config);
  const double tree =
      EstimateCostUs(op, CollectiveAlgorithm::kBinomialTree, n, bytes, span_hops, config);
  return ring < tree ? CollectiveAlgorithm::kRing : CollectiveAlgorithm::kBinomialTree;
}

double EstimateAllReduceCostUs(CollectiveAlgorithm algo, int n, std::uint64_t bytes,
                               int span_hops, const std::vector<int>& pod_of,
                               const CollectivePlanConfig& config) {
  if (n <= 1) {
    return 0.0;
  }
  const std::vector<std::vector<int>> groups = GroupByPod(n, pod_of);
  const int num_pods = static_cast<int>(groups.size());
  const bool two_tier =
      num_pods > 1 && (config.bridge_alpha_us > 0.0 || config.bridge_mbps > 0.0);
  if (!two_tier) {
    const CollectiveAlgorithm flat =
        algo == CollectiveAlgorithm::kHierarchical ? CollectiveAlgorithm::kRing : algo;
    return EstimateCostUs(CollectiveOp::kAllReduce, flat, n, bytes, span_hops, config);
  }

  const double alpha =
      config.step_overhead_us + static_cast<double>(std::max(span_hops, 0)) * config.hop_us;
  const double mbps = config.effective_mbps > 0.0 ? config.effective_mbps : 8000.0;
  const double bridge_mbps = config.bridge_mbps > 0.0 ? std::min(mbps, config.bridge_mbps) : mbps;
  const auto beta = [mbps](double b) { return b / mbps; };
  const auto beta_bridge = [bridge_mbps](double b) { return b / bridge_mbps; };
  const double alpha_bridge = alpha + config.bridge_alpha_us;
  const double b = static_cast<double>(bytes);
  const double nn = static_cast<double>(n);

  switch (algo) {
    case CollectiveAlgorithm::kRing:
      // The member ring crosses pod boundaries, so every one of the
      // 2(n-1) round barriers waits on a bridge hop.
      return 2.0 * (nn - 1.0) * (alpha_bridge + beta_bridge(b / nn));
    case CollectiveAlgorithm::kBinomialTree:
    case CollectiveAlgorithm::kLinear: {
      // Recursive halving pairs members across pods from round 0, moving
      // the full payload over bridges each round. Every member of a pod
      // pushes its payload over that pod's shared Ethernet hop in a cross
      // round, so the bridge serializes ~m payloads per round — exactly
      // the contention the hierarchical schedule confines to one leader.
      std::size_t max_pod = 1;
      for (const auto& mem : groups) {
        max_pod = std::max(max_pod, mem.size());
      }
      const double m = static_cast<double>(max_pod);
      return 2.0 * CeilLog2(n) * (alpha_bridge + beta_bridge(b * m));
    }
    case CollectiveAlgorithm::kAuto:
    case CollectiveAlgorithm::kHierarchical: {
      std::size_t max_pod = 1;
      for (const auto& mem : groups) {
        max_pod = std::max(max_pod, mem.size());
      }
      const double m = static_cast<double>(max_pod);
      // Intra phases run concurrently per pod; the largest pod paces them.
      double intra = 0.0;
      if (max_pod > 1) {
        intra = (m - 1.0) * (alpha + beta(b / m))        // ring reduce-scatter
                + alpha + beta(b * (m - 1.0) / m)        // slice gather to leader
                + CeilLog2(static_cast<int>(max_pod)) * (alpha + beta(b));  // broadcast down
      }
      // Only the leaders cross the bridge tier: tree reduce + broadcast.
      const double cross = 2.0 * CeilLog2(num_pods) * (alpha_bridge + beta_bridge(b));
      return intra + cross;
    }
  }
  return 0.0;
}

CollectiveAlgorithm ChooseAllReduceAlgorithm(int n, std::uint64_t bytes, int span_hops,
                                             const std::vector<int>& pod_of,
                                             const CollectivePlanConfig& config) {
  const std::vector<std::vector<int>> groups = GroupByPod(n, pod_of);
  const bool two_tier = static_cast<int>(groups.size()) > 1 &&
                        (config.bridge_alpha_us > 0.0 || config.bridge_mbps > 0.0);
  if (!two_tier) {
    return ChooseAlgorithm(CollectiveOp::kAllReduce, n, bytes, span_hops, config);
  }
  // Evaluation order ring, tree, hierarchical with strict improvement:
  // ties (e.g. every pod holding one member, where hierarchical == tree)
  // keep the flat form.
  CollectiveAlgorithm best = CollectiveAlgorithm::kRing;
  double best_cost = EstimateAllReduceCostUs(best, n, bytes, span_hops, pod_of, config);
  for (CollectiveAlgorithm algo :
       {CollectiveAlgorithm::kBinomialTree, CollectiveAlgorithm::kHierarchical}) {
    const double cost = EstimateAllReduceCostUs(algo, n, bytes, span_hops, pod_of, config);
    if (cost < best_cost) {
      best = algo;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace unifab
