#include "src/core/heap_profiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace unifab {

ShardedTemperatureProfiler::ShardedTemperatureProfiler(const ProfilerConfig& config,
                                                       double ewma_alpha)
    : config_(config), ewma_alpha_(ewma_alpha) {
  assert(config_.shards > 0);
  shards_.resize(static_cast<std::size_t>(config_.shards));
}

void ShardedTemperatureProfiler::OnAllocate(std::uint64_t id) {
  shards_[ShardOf(id)].entries.emplace(id, Entry{});
}

void ShardedTemperatureProfiler::OnFree(std::uint64_t id) {
  shards_[ShardOf(id)].entries.erase(id);
}

void ShardedTemperatureProfiler::OnAccess(std::uint64_t id) {
  auto& entries = shards_[ShardOf(id)].entries;
  auto it = entries.find(id);
  if (it != entries.end()) {
    ++it->second.pending;
  }
}

std::vector<ShardedTemperatureProfiler::Candidate> ShardedTemperatureProfiler::FoldEpoch(
    std::uint64_t elapsed, double hot_threshold, double cold_threshold) {
  ++folds_;
  epoch_temperature_.Clear();
  const double idle_decay =
      std::pow(1.0 - ewma_alpha_, static_cast<double>(elapsed > 0 ? elapsed - 1 : 0));

  const auto hotter = [](const Candidate& a, const Candidate& b) {
    return a.temperature != b.temperature ? a.temperature > b.temperature : a.id < b.id;
  };
  const auto colder = [](const Candidate& a, const Candidate& b) {
    return a.temperature != b.temperature ? a.temperature < b.temperature : a.id < b.id;
  };

  std::vector<Candidate> hot;
  std::vector<Candidate> cold;
  std::vector<Candidate> shard_hot;
  std::vector<Candidate> shard_cold;
  for (Shard& shard : shards_) {
    shard_hot.clear();
    shard_cold.clear();
    for (auto& [id, entry] : shard.entries) {
      if (elapsed > 1) {
        entry.temperature *= idle_decay;
      }
      entry.temperature = ewma_alpha_ * static_cast<double>(entry.pending) +
                          (1.0 - ewma_alpha_) * entry.temperature;
      entry.pending = 0;
      epoch_temperature_.Add(entry.temperature);
      // An entry can qualify both ways when the thresholds overlap
      // (promote_threshold < demote_threshold); the policy re-filters, so
      // report it in both directions like the legacy full snapshot did.
      if (entry.temperature >= hot_threshold) {
        shard_hot.push_back(Candidate{id, entry.temperature});
      }
      if (entry.temperature <= cold_threshold) {
        shard_cold.push_back(Candidate{id, entry.temperature});
      }
    }
    std::sort(shard_hot.begin(), shard_hot.end(), hotter);
    std::sort(shard_cold.begin(), shard_cold.end(), colder);
    if (shard_hot.size() > config_.max_candidates_per_shard) {
      shard_hot.resize(config_.max_candidates_per_shard);
    }
    if (shard_cold.size() > config_.max_candidates_per_shard) {
      shard_cold.resize(config_.max_candidates_per_shard);
    }
    hot.insert(hot.end(), shard_hot.begin(), shard_hot.end());
    cold.insert(cold.end(), shard_cold.begin(), shard_cold.end());
  }

  // Deterministic cross-shard merge: the per-shard extracts were already
  // totally ordered, so one global sort pins the final order regardless of
  // shard iteration order (unordered_map order never leaks out).
  std::sort(hot.begin(), hot.end(), hotter);
  std::sort(cold.begin(), cold.end(), colder);
  hot_candidates_ += hot.size();
  cold_candidates_ += cold.size();

  std::vector<Candidate> merged;
  merged.reserve(hot.size() + cold.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(hot.size() + cold.size());
  for (const Candidate& c : hot) {
    if (seen.insert(c.id).second) {
      merged.push_back(c);
    }
  }
  for (const Candidate& c : cold) {
    if (seen.insert(c.id).second) {
      merged.push_back(c);
    }
  }
  return merged;
}

double ShardedTemperatureProfiler::TemperatureOf(std::uint64_t id) const {
  const auto& entries = shards_[ShardOf(id)].entries;
  auto it = entries.find(id);
  return it == entries.end() ? 0.0 : it->second.temperature;
}

std::uint64_t ShardedTemperatureProfiler::PendingAccesses(std::uint64_t id) const {
  const auto& entries = shards_[ShardOf(id)].entries;
  auto it = entries.find(id);
  return it == entries.end() ? 0 : it->second.pending;
}

std::size_t ShardedTemperatureProfiler::entries() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    n += shard.entries.size();
  }
  return n;
}

void ShardedTemperatureProfiler::BindMetrics(MetricGroup& group, const std::string& prefix) {
  group.AddCounterFn(prefix + "folds", [this] { return folds_; });
  group.AddCounterFn(prefix + "hot_candidates", [this] { return hot_candidates_; });
  group.AddCounterFn(prefix + "cold_candidates", [this] { return cold_candidates_; });
  group.AddGaugeFn(prefix + "entries", [this] { return static_cast<double>(entries()); });
  group.AddSummaryFn(prefix + "epoch_temperature", [this] { return &epoch_temperature_; });
  for (int s = 0; s < num_shards(); ++s) {
    group.AddGaugeFn(prefix + "shard" + std::to_string(s) + "/entries",
                     [this, s] { return static_cast<double>(ShardEntries(s)); });
  }
}

}  // namespace unifab
