#include "src/core/ofi.h"

#include <algorithm>
#include <utility>

namespace unifab {

const char* OfiOpName(OfiOp op) {
  switch (op) {
    case OfiOp::kSend: return "send";
    case OfiOp::kRecv: return "recv";
    case OfiOp::kRead: return "read";
    case OfiOp::kWrite: return "write";
    case OfiOp::kCollective: return "collective";
  }
  return "?";
}

bool CompletionQueue::Reap(OfiCompletion* out) {
  if (entries_.empty()) {
    return false;
  }
  *out = entries_.front();
  entries_.pop_front();
  return true;
}

bool CompletionQueue::Push(const OfiCompletion& c) {
  if (entries_.size() >= depth_) {
    ++overflow_drops_;
    return false;
  }
  entries_.push_back(c);
  return true;
}

void OfiStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "sends_posted", [this] { return sends_posted; });
  group.AddCounterFn(prefix + "recvs_posted", [this] { return recvs_posted; });
  group.AddCounterFn(prefix + "reads_posted", [this] { return reads_posted; });
  group.AddCounterFn(prefix + "writes_posted", [this] { return writes_posted; });
  group.AddCounterFn(prefix + "collectives_posted", [this] { return collectives_posted; });
  group.AddCounterFn(prefix + "completions", [this] { return completions; });
  group.AddCounterFn(prefix + "errors", [this] { return errors; });
  group.AddCounterFn(prefix + "unexpected_matched", [this] { return unexpected_matched; });
  group.AddCounterFn(prefix + "cq_overflows", [this] { return cq_overflows; });
}

OfiDomain::OfiDomain(Engine* engine, ETransEngine* etrans, CollectiveEngine* collect,
                     OfiConfig config)
    : engine_(engine), etrans_(etrans), collect_(collect), config_(config) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/ofi");
  stats_.BindTo(metrics_);
  audit_ = AuditScope(&engine_->audit(), "core/ofi");
  // Every posted operation is, at any event boundary, exactly one of:
  // retired as a completion, in flight on eTrans/eCollect, or structurally
  // parked (a posted recv or an unexpected send awaiting its match).
  audit_.AddCheck("completions_conserved", [this]() -> std::string {
    std::uint64_t pending = inflight_ops_;
    for (const auto& ep : endpoints_) {
      pending += ep->recvs_.size() + ep->unexpected_.size();
    }
    const std::uint64_t posted = stats_.sends_posted + stats_.recvs_posted +
                                 stats_.reads_posted + stats_.writes_posted +
                                 stats_.collectives_posted;
    if (posted != stats_.completions + pending) {
      return "posted=" + std::to_string(posted) +
             " != completions(" + std::to_string(stats_.completions) + ") + pending(" +
             std::to_string(pending) + ")";
    }
    return {};
  });
}

MemRegion OfiDomain::RegisterMemory(PbrId node, std::uint64_t addr, std::uint64_t len) {
  MemRegion region;
  region.node = node;
  region.addr = addr;
  region.len = len;
  region.key = next_key_++;
  regions_[region.key] = region;
  return region;
}

const MemRegion* OfiDomain::RegionByKey(std::uint64_t key) const {
  auto it = regions_.find(key);
  return it == regions_.end() ? nullptr : &it->second;
}

Endpoint* OfiDomain::CreateEndpoint(PbrId node, MigrationAgent* agent, CompletionQueue* cq,
                                    std::string name) {
  endpoints_.push_back(
      std::unique_ptr<Endpoint>(new Endpoint(this, node, agent, cq, std::move(name))));
  Endpoint* ep = endpoints_.back().get();
  by_node_[node] = ep;
  return ep;
}

Endpoint* OfiDomain::EndpointOf(PbrId node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

void OfiDomain::Complete(CompletionQueue* cq, OfiCompletion c) {
  ++stats_.completions;
  if (!c.ok) {
    ++stats_.errors;
  }
  if (cq != nullptr && !cq->Push(c)) {
    ++stats_.cq_overflows;  // retired regardless: the op reached a terminal
  }
}

void OfiDomain::LaunchMatched(Endpoint* sender, std::uint64_t tag, const MemRegion& src,
                              std::uint64_t send_context, Endpoint* receiver,
                              const MemRegion& dst, std::uint64_t recv_context) {
  const Tick now = engine_->Now();
  if (dst.len < src.len) {
    // Truncation: OFI fails the pair rather than silently clipping.
    Complete(sender->cq_, OfiCompletion{send_context, OfiOp::kSend, false, 0, tag, now});
    Complete(receiver->cq_, OfiCompletion{recv_context, OfiOp::kRecv, false, 0, tag, now});
    return;
  }
  inflight_ops_ += 2;  // the send and its matched recv retire together

  // Bytes move between the regions' home nodes (FAM/FAA memory the fabric
  // can serve); the endpoints' agents only orchestrate. Hosts are traffic
  // sources in this model, not remote-write targets.
  ETransDescriptor desc;
  desc.src.push_back(Segment{src.node, src.addr, src.len});
  desc.dst.push_back(Segment{dst.node, dst.addr, src.len});
  desc.ownership = Ownership::kInitiator;
  desc.attributes.chunk_bytes = config_.chunk_bytes;
  desc.attributes.pipeline_depth = config_.pipeline_depth;

  etrans_->Submit(sender->agent_, desc)
      .Then([this, sender, receiver, tag, send_context, recv_context](const TransferResult& r) {
        inflight_ops_ -= 2;
        Complete(sender->cq_, OfiCompletion{send_context, OfiOp::kSend, r.ok, r.bytes, tag,
                                            r.completed_at});
        Complete(receiver->cq_, OfiCompletion{recv_context, OfiOp::kRecv, r.ok, r.bytes, tag,
                                              r.completed_at});
      });
}

void OfiDomain::LaunchRma(Endpoint* ep, OfiOp op, const MemRegion& remote,
                          std::uint64_t local_addr, std::uint64_t bytes, std::uint64_t context) {
  if (bytes > remote.len || RegionByKey(remote.key) == nullptr) {
    // Out-of-bounds or unregistered target: immediate error completion.
    Complete(ep->cq_, OfiCompletion{context, op, false, 0, 0, engine_->Now()});
    return;
  }
  ++inflight_ops_;
  ETransDescriptor desc;
  const Segment local{ep->node_, local_addr, bytes};
  const Segment target{remote.node, remote.addr, bytes};
  if (op == OfiOp::kRead) {
    desc.src.push_back(target);
    desc.dst.push_back(local);
  } else {
    desc.src.push_back(local);
    desc.dst.push_back(target);
  }
  desc.ownership = Ownership::kInitiator;
  desc.attributes.chunk_bytes = config_.chunk_bytes;
  desc.attributes.pipeline_depth = config_.pipeline_depth;

  etrans_->Submit(ep->agent_, desc).Then([this, ep, op, context](const TransferResult& r) {
    --inflight_ops_;
    Complete(ep->cq_, OfiCompletion{context, op, r.ok, r.bytes, 0, r.completed_at});
  });
}

void Endpoint::PostRecv(std::uint64_t tag, const MemRegion& local, std::uint64_t context) {
  ++domain_->stats_.recvs_posted;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->tag == tag) {
      const UnexpectedSend send = *it;
      unexpected_.erase(it);
      ++domain_->stats_.unexpected_matched;
      domain_->LaunchMatched(send.sender, tag, send.region, send.context, this, local, context);
      return;
    }
  }
  recvs_.push_back(PostedRecv{tag, local, context});
}

void Endpoint::PostSend(PbrId dest, std::uint64_t tag, const MemRegion& local,
                        std::uint64_t context) {
  ++domain_->stats_.sends_posted;
  Endpoint* receiver = domain_->EndpointOf(dest);
  if (receiver == nullptr) {
    domain_->Complete(cq_, OfiCompletion{context, OfiOp::kSend, false, 0, tag,
                                         domain_->engine_->Now()});
    return;
  }
  for (auto it = receiver->recvs_.begin(); it != receiver->recvs_.end(); ++it) {
    if (it->tag == tag) {
      const PostedRecv recv = *it;
      receiver->recvs_.erase(it);
      domain_->LaunchMatched(this, tag, local, context, receiver, recv.region, recv.context);
      return;
    }
  }
  if (receiver->unexpected_.size() >= domain_->config_.max_unexpected) {
    domain_->Complete(cq_, OfiCompletion{context, OfiOp::kSend, false, 0, tag,
                                         domain_->engine_->Now()});
    return;
  }
  receiver->unexpected_.push_back(UnexpectedSend{this, tag, local, context});
}

void Endpoint::Read(const MemRegion& remote, std::uint64_t local_addr, std::uint64_t bytes,
                    std::uint64_t context) {
  ++domain_->stats_.reads_posted;
  domain_->LaunchRma(this, OfiOp::kRead, remote, local_addr, bytes, context);
}

void Endpoint::Write(const MemRegion& remote, std::uint64_t local_addr, std::uint64_t bytes,
                     std::uint64_t context) {
  ++domain_->stats_.writes_posted;
  domain_->LaunchRma(this, OfiOp::kWrite, remote, local_addr, bytes, context);
}

void Endpoint::AllReduce(const CollectiveGroup& group, std::uint64_t bytes,
                         std::uint64_t context) {
  ++domain_->stats_.collectives_posted;
  if (domain_->collect_ == nullptr) {
    domain_->Complete(cq_, OfiCompletion{context, OfiOp::kCollective, false, 0, 0,
                                         domain_->engine_->Now()});
    return;
  }
  ++domain_->inflight_ops_;
  domain_->collect_->AllReduce(group, bytes).Then([this, context](const CollectiveResult& r) {
    --domain_->inflight_ops_;
    domain_->Complete(cq_, OfiCompletion{context, OfiOp::kCollective, r.ok, r.bytes, 0,
                                         r.completed_at});
  });
}

}  // namespace unifab
