# Empty dependencies file for fabric_switch_test.
# This may be replaced when dependencies are built.
