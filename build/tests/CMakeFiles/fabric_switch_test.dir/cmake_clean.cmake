file(REMOVE_RECURSE
  "CMakeFiles/fabric_switch_test.dir/fabric_switch_test.cc.o"
  "CMakeFiles/fabric_switch_test.dir/fabric_switch_test.cc.o.d"
  "fabric_switch_test"
  "fabric_switch_test.pdb"
  "fabric_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
