file(REMOVE_RECURSE
  "CMakeFiles/fabric_failover_test.dir/fabric_failover_test.cc.o"
  "CMakeFiles/fabric_failover_test.dir/fabric_failover_test.cc.o.d"
  "fabric_failover_test"
  "fabric_failover_test.pdb"
  "fabric_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
