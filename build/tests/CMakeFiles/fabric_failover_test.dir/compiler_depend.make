# Empty compiler generated dependencies file for fabric_failover_test.
# This may be replaced when dependencies are built.
