file(REMOVE_RECURSE
  "CMakeFiles/topo_calibration_test.dir/topo_calibration_test.cc.o"
  "CMakeFiles/topo_calibration_test.dir/topo_calibration_test.cc.o.d"
  "topo_calibration_test"
  "topo_calibration_test.pdb"
  "topo_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
