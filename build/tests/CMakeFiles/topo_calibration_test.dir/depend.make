# Empty dependencies file for topo_calibration_test.
# This may be replaced when dependencies are built.
