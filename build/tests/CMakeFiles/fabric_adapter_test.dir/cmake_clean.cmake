file(REMOVE_RECURSE
  "CMakeFiles/fabric_adapter_test.dir/fabric_adapter_test.cc.o"
  "CMakeFiles/fabric_adapter_test.dir/fabric_adapter_test.cc.o.d"
  "fabric_adapter_test"
  "fabric_adapter_test.pdb"
  "fabric_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
