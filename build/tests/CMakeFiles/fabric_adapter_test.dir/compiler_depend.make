# Empty compiler generated dependencies file for fabric_adapter_test.
# This may be replaced when dependencies are built.
