# Empty dependencies file for core_heap_test.
# This may be replaced when dependencies are built.
