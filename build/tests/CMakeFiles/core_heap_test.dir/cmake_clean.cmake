file(REMOVE_RECURSE
  "CMakeFiles/core_heap_test.dir/core_heap_test.cc.o"
  "CMakeFiles/core_heap_test.dir/core_heap_test.cc.o.d"
  "core_heap_test"
  "core_heap_test.pdb"
  "core_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
