file(REMOVE_RECURSE
  "CMakeFiles/core_replicated_test.dir/core_replicated_test.cc.o"
  "CMakeFiles/core_replicated_test.dir/core_replicated_test.cc.o.d"
  "core_replicated_test"
  "core_replicated_test.pdb"
  "core_replicated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_replicated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
