file(REMOVE_RECURSE
  "CMakeFiles/core_etrans_test.dir/core_etrans_test.cc.o"
  "CMakeFiles/core_etrans_test.dir/core_etrans_test.cc.o.d"
  "core_etrans_test"
  "core_etrans_test.pdb"
  "core_etrans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_etrans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
