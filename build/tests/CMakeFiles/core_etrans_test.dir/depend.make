# Empty dependencies file for core_etrans_test.
# This may be replaced when dependencies are built.
