file(REMOVE_RECURSE
  "CMakeFiles/integration_contention_test.dir/integration_contention_test.cc.o"
  "CMakeFiles/integration_contention_test.dir/integration_contention_test.cc.o.d"
  "integration_contention_test"
  "integration_contention_test.pdb"
  "integration_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
