# Empty compiler generated dependencies file for fabric_link_test.
# This may be replaced when dependencies are built.
