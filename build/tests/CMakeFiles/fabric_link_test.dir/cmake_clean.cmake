file(REMOVE_RECURSE
  "CMakeFiles/fabric_link_test.dir/fabric_link_test.cc.o"
  "CMakeFiles/fabric_link_test.dir/fabric_link_test.cc.o.d"
  "fabric_link_test"
  "fabric_link_test.pdb"
  "fabric_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
