
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_runtime_test.cc" "tests/CMakeFiles/core_runtime_test.dir/core_runtime_test.cc.o" "gcc" "tests/CMakeFiles/core_runtime_test.dir/core_runtime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/uf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/uf_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/uf_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
