file(REMOVE_RECURSE
  "CMakeFiles/core_itask_sfunc_test.dir/core_itask_sfunc_test.cc.o"
  "CMakeFiles/core_itask_sfunc_test.dir/core_itask_sfunc_test.cc.o.d"
  "core_itask_sfunc_test"
  "core_itask_sfunc_test.pdb"
  "core_itask_sfunc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_itask_sfunc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
