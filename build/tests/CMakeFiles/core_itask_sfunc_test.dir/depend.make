# Empty dependencies file for core_itask_sfunc_test.
# This may be replaced when dependencies are built.
