file(REMOVE_RECURSE
  "CMakeFiles/topo_cluster_test.dir/topo_cluster_test.cc.o"
  "CMakeFiles/topo_cluster_test.dir/topo_cluster_test.cc.o.d"
  "topo_cluster_test"
  "topo_cluster_test.pdb"
  "topo_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
