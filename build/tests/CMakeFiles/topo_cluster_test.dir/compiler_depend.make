# Empty compiler generated dependencies file for topo_cluster_test.
# This may be replaced when dependencies are built.
