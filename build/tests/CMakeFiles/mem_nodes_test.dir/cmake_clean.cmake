file(REMOVE_RECURSE
  "CMakeFiles/mem_nodes_test.dir/mem_nodes_test.cc.o"
  "CMakeFiles/mem_nodes_test.dir/mem_nodes_test.cc.o.d"
  "mem_nodes_test"
  "mem_nodes_test.pdb"
  "mem_nodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
