# Empty dependencies file for mem_nodes_test.
# This may be replaced when dependencies are built.
