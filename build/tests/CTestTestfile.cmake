# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/topo_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_link_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_switch_test[1]_include.cmake")
include("/root/repo/build/tests/mem_cache_test[1]_include.cmake")
include("/root/repo/build/tests/mem_nodes_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_adapter_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_random_test[1]_include.cmake")
include("/root/repo/build/tests/mem_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/core_etrans_test[1]_include.cmake")
include("/root/repo/build/tests/core_heap_test[1]_include.cmake")
include("/root/repo/build/tests/core_itask_sfunc_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_failover_test[1]_include.cmake")
include("/root/repo/build/tests/core_replicated_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/topo_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integration_contention_test[1]_include.cmake")
