# Empty dependencies file for bench_table1_registry.
# This may be replaced when dependencies are built.
