file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_nodes.dir/bench_memory_nodes.cc.o"
  "CMakeFiles/bench_memory_nodes.dir/bench_memory_nodes.cc.o.d"
  "bench_memory_nodes"
  "bench_memory_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
