# Empty compiler generated dependencies file for bench_memory_nodes.
# This may be replaced when dependencies are built.
