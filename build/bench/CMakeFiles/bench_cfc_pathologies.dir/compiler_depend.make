# Empty compiler generated dependencies file for bench_cfc_pathologies.
# This may be replaced when dependencies are built.
