file(REMOVE_RECURSE
  "CMakeFiles/bench_cfc_pathologies.dir/bench_cfc_pathologies.cc.o"
  "CMakeFiles/bench_cfc_pathologies.dir/bench_cfc_pathologies.cc.o.d"
  "bench_cfc_pathologies"
  "bench_cfc_pathologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cfc_pathologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
