file(REMOVE_RECURSE
  "CMakeFiles/bench_control_lane.dir/bench_control_lane.cc.o"
  "CMakeFiles/bench_control_lane.dir/bench_control_lane.cc.o.d"
  "bench_control_lane"
  "bench_control_lane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_lane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
