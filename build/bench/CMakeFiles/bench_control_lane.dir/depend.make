# Empty dependencies file for bench_control_lane.
# This may be replaced when dependencies are built.
