file(REMOVE_RECURSE
  "CMakeFiles/bench_idempotent_tasks.dir/bench_idempotent_tasks.cc.o"
  "CMakeFiles/bench_idempotent_tasks.dir/bench_idempotent_tasks.cc.o.d"
  "bench_idempotent_tasks"
  "bench_idempotent_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idempotent_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
