# Empty dependencies file for bench_idempotent_tasks.
# This may be replaced when dependencies are built.
