file(REMOVE_RECURSE
  "CMakeFiles/bench_node_replication.dir/bench_node_replication.cc.o"
  "CMakeFiles/bench_node_replication.dir/bench_node_replication.cc.o.d"
  "bench_node_replication"
  "bench_node_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
