# Empty dependencies file for bench_node_replication.
# This may be replaced when dependencies are built.
