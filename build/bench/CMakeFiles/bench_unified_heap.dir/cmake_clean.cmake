file(REMOVE_RECURSE
  "CMakeFiles/bench_unified_heap.dir/bench_unified_heap.cc.o"
  "CMakeFiles/bench_unified_heap.dir/bench_unified_heap.cc.o.d"
  "bench_unified_heap"
  "bench_unified_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unified_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
