# Empty dependencies file for bench_unified_heap.
# This may be replaced when dependencies are built.
