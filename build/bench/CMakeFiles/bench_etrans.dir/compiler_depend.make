# Empty compiler generated dependencies file for bench_etrans.
# This may be replaced when dependencies are built.
