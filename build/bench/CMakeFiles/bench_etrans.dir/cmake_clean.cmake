file(REMOVE_RECURSE
  "CMakeFiles/bench_etrans.dir/bench_etrans.cc.o"
  "CMakeFiles/bench_etrans.dir/bench_etrans.cc.o.d"
  "bench_etrans"
  "bench_etrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_etrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
