file(REMOVE_RECURSE
  "CMakeFiles/bench_mimo_pipeline.dir/bench_mimo_pipeline.cc.o"
  "CMakeFiles/bench_mimo_pipeline.dir/bench_mimo_pipeline.cc.o.d"
  "bench_mimo_pipeline"
  "bench_mimo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mimo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
