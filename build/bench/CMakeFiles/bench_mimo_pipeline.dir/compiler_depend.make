# Empty compiler generated dependencies file for bench_mimo_pipeline.
# This may be replaced when dependencies are built.
