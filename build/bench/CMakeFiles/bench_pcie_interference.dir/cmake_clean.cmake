file(REMOVE_RECURSE
  "CMakeFiles/bench_pcie_interference.dir/bench_pcie_interference.cc.o"
  "CMakeFiles/bench_pcie_interference.dir/bench_pcie_interference.cc.o.d"
  "bench_pcie_interference"
  "bench_pcie_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcie_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
