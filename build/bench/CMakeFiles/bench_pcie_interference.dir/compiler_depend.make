# Empty compiler generated dependencies file for bench_pcie_interference.
# This may be replaced when dependencies are built.
