file(REMOVE_RECURSE
  "CMakeFiles/bench_flit_modes.dir/bench_flit_modes.cc.o"
  "CMakeFiles/bench_flit_modes.dir/bench_flit_modes.cc.o.d"
  "bench_flit_modes"
  "bench_flit_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flit_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
