# Empty compiler generated dependencies file for bench_flit_modes.
# This may be replaced when dependencies are built.
