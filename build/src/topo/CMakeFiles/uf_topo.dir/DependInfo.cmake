
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/accelerator.cc" "src/topo/CMakeFiles/uf_topo.dir/accelerator.cc.o" "gcc" "src/topo/CMakeFiles/uf_topo.dir/accelerator.cc.o.d"
  "/root/repo/src/topo/chassis.cc" "src/topo/CMakeFiles/uf_topo.dir/chassis.cc.o" "gcc" "src/topo/CMakeFiles/uf_topo.dir/chassis.cc.o.d"
  "/root/repo/src/topo/cluster.cc" "src/topo/CMakeFiles/uf_topo.dir/cluster.cc.o" "gcc" "src/topo/CMakeFiles/uf_topo.dir/cluster.cc.o.d"
  "/root/repo/src/topo/host.cc" "src/topo/CMakeFiles/uf_topo.dir/host.cc.o" "gcc" "src/topo/CMakeFiles/uf_topo.dir/host.cc.o.d"
  "/root/repo/src/topo/presets.cc" "src/topo/CMakeFiles/uf_topo.dir/presets.cc.o" "gcc" "src/topo/CMakeFiles/uf_topo.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/uf_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
