file(REMOVE_RECURSE
  "CMakeFiles/uf_topo.dir/accelerator.cc.o"
  "CMakeFiles/uf_topo.dir/accelerator.cc.o.d"
  "CMakeFiles/uf_topo.dir/chassis.cc.o"
  "CMakeFiles/uf_topo.dir/chassis.cc.o.d"
  "CMakeFiles/uf_topo.dir/cluster.cc.o"
  "CMakeFiles/uf_topo.dir/cluster.cc.o.d"
  "CMakeFiles/uf_topo.dir/host.cc.o"
  "CMakeFiles/uf_topo.dir/host.cc.o.d"
  "CMakeFiles/uf_topo.dir/presets.cc.o"
  "CMakeFiles/uf_topo.dir/presets.cc.o.d"
  "libuf_topo.a"
  "libuf_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
