file(REMOVE_RECURSE
  "libuf_topo.a"
)
