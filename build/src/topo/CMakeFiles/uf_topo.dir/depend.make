# Empty dependencies file for uf_topo.
# This may be replaced when dependencies are built.
