file(REMOVE_RECURSE
  "CMakeFiles/uf_sim.dir/engine.cc.o"
  "CMakeFiles/uf_sim.dir/engine.cc.o.d"
  "CMakeFiles/uf_sim.dir/logging.cc.o"
  "CMakeFiles/uf_sim.dir/logging.cc.o.d"
  "CMakeFiles/uf_sim.dir/random.cc.o"
  "CMakeFiles/uf_sim.dir/random.cc.o.d"
  "CMakeFiles/uf_sim.dir/stats.cc.o"
  "CMakeFiles/uf_sim.dir/stats.cc.o.d"
  "libuf_sim.a"
  "libuf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
