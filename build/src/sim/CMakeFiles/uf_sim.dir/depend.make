# Empty dependencies file for uf_sim.
# This may be replaced when dependencies are built.
