file(REMOVE_RECURSE
  "libuf_sim.a"
)
