# Empty compiler generated dependencies file for uf_fabric.
# This may be replaced when dependencies are built.
