file(REMOVE_RECURSE
  "CMakeFiles/uf_fabric.dir/adapter.cc.o"
  "CMakeFiles/uf_fabric.dir/adapter.cc.o.d"
  "CMakeFiles/uf_fabric.dir/flit.cc.o"
  "CMakeFiles/uf_fabric.dir/flit.cc.o.d"
  "CMakeFiles/uf_fabric.dir/interconnect.cc.o"
  "CMakeFiles/uf_fabric.dir/interconnect.cc.o.d"
  "CMakeFiles/uf_fabric.dir/link.cc.o"
  "CMakeFiles/uf_fabric.dir/link.cc.o.d"
  "CMakeFiles/uf_fabric.dir/registry.cc.o"
  "CMakeFiles/uf_fabric.dir/registry.cc.o.d"
  "CMakeFiles/uf_fabric.dir/switch.cc.o"
  "CMakeFiles/uf_fabric.dir/switch.cc.o.d"
  "libuf_fabric.a"
  "libuf_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
