
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/adapter.cc" "src/fabric/CMakeFiles/uf_fabric.dir/adapter.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/adapter.cc.o.d"
  "/root/repo/src/fabric/flit.cc" "src/fabric/CMakeFiles/uf_fabric.dir/flit.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/flit.cc.o.d"
  "/root/repo/src/fabric/interconnect.cc" "src/fabric/CMakeFiles/uf_fabric.dir/interconnect.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/interconnect.cc.o.d"
  "/root/repo/src/fabric/link.cc" "src/fabric/CMakeFiles/uf_fabric.dir/link.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/link.cc.o.d"
  "/root/repo/src/fabric/registry.cc" "src/fabric/CMakeFiles/uf_fabric.dir/registry.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/registry.cc.o.d"
  "/root/repo/src/fabric/switch.cc" "src/fabric/CMakeFiles/uf_fabric.dir/switch.cc.o" "gcc" "src/fabric/CMakeFiles/uf_fabric.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/uf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
