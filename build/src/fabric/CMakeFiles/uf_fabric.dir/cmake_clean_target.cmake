file(REMOVE_RECURSE
  "libuf_fabric.a"
)
