
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arbiter.cc" "src/core/CMakeFiles/uf_core.dir/arbiter.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/arbiter.cc.o.d"
  "/root/repo/src/core/etrans.cc" "src/core/CMakeFiles/uf_core.dir/etrans.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/etrans.cc.o.d"
  "/root/repo/src/core/heap.cc" "src/core/CMakeFiles/uf_core.dir/heap.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/heap.cc.o.d"
  "/root/repo/src/core/itask.cc" "src/core/CMakeFiles/uf_core.dir/itask.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/itask.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/uf_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/sfunc.cc" "src/core/CMakeFiles/uf_core.dir/sfunc.cc.o" "gcc" "src/core/CMakeFiles/uf_core.dir/sfunc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/uf_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/uf_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
