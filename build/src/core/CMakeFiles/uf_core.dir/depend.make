# Empty dependencies file for uf_core.
# This may be replaced when dependencies are built.
