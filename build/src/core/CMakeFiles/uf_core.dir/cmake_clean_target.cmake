file(REMOVE_RECURSE
  "libuf_core.a"
)
