file(REMOVE_RECURSE
  "CMakeFiles/uf_core.dir/arbiter.cc.o"
  "CMakeFiles/uf_core.dir/arbiter.cc.o.d"
  "CMakeFiles/uf_core.dir/etrans.cc.o"
  "CMakeFiles/uf_core.dir/etrans.cc.o.d"
  "CMakeFiles/uf_core.dir/heap.cc.o"
  "CMakeFiles/uf_core.dir/heap.cc.o.d"
  "CMakeFiles/uf_core.dir/itask.cc.o"
  "CMakeFiles/uf_core.dir/itask.cc.o.d"
  "CMakeFiles/uf_core.dir/runtime.cc.o"
  "CMakeFiles/uf_core.dir/runtime.cc.o.d"
  "CMakeFiles/uf_core.dir/sfunc.cc.o"
  "CMakeFiles/uf_core.dir/sfunc.cc.o.d"
  "libuf_core.a"
  "libuf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
