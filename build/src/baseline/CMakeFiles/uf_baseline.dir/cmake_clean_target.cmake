file(REMOVE_RECURSE
  "libuf_baseline.a"
)
