file(REMOVE_RECURSE
  "CMakeFiles/uf_mem.dir/cache.cc.o"
  "CMakeFiles/uf_mem.dir/cache.cc.o.d"
  "CMakeFiles/uf_mem.dir/ccnuma.cc.o"
  "CMakeFiles/uf_mem.dir/ccnuma.cc.o.d"
  "CMakeFiles/uf_mem.dir/coma.cc.o"
  "CMakeFiles/uf_mem.dir/coma.cc.o.d"
  "CMakeFiles/uf_mem.dir/dram.cc.o"
  "CMakeFiles/uf_mem.dir/dram.cc.o.d"
  "CMakeFiles/uf_mem.dir/expander.cc.o"
  "CMakeFiles/uf_mem.dir/expander.cc.o.d"
  "CMakeFiles/uf_mem.dir/hierarchy.cc.o"
  "CMakeFiles/uf_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/uf_mem.dir/memnode.cc.o"
  "CMakeFiles/uf_mem.dir/memnode.cc.o.d"
  "CMakeFiles/uf_mem.dir/noncc.cc.o"
  "CMakeFiles/uf_mem.dir/noncc.cc.o.d"
  "libuf_mem.a"
  "libuf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
