file(REMOVE_RECURSE
  "CMakeFiles/mimo_baseband.dir/mimo_baseband.cpp.o"
  "CMakeFiles/mimo_baseband.dir/mimo_baseband.cpp.o.d"
  "mimo_baseband"
  "mimo_baseband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimo_baseband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
