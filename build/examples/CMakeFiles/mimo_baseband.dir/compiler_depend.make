# Empty compiler generated dependencies file for mimo_baseband.
# This may be replaced when dependencies are built.
