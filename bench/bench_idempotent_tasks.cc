// P3: DP#3 ablation — idempotent tasks under passive failure domains. A
// 60-task, 3-stage DAG runs on two FAA chassis while a failure injector
// power-cycles random chassis (passive domain: queued and running kernels
// vanish, nothing signals the host). Recovery modes:
//   * idempotent re-execution: only lost tasks re-run (FCC);
//   * restart-all: any loss restarts the whole job (what a runtime without
//     idempotence guarantees must do to preserve correctness).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/random.h"

namespace unifab {
namespace {

constexpr int kStageWidth = 30;
constexpr Tick kComputeCost = FromUs(200.0);
constexpr Tick kHorizon = FromMs(100.0);
constexpr Tick kDowntime = FromUs(150.0);

struct Outcome {
  double makespan_ms = -1.0;  // -1: did not finish
  std::uint64_t attempts = 0;
  std::uint64_t reexecutions = 0;
  std::uint64_t restarts = 0;
  std::uint64_t timeouts = 0;
};

Outcome Run(RecoveryMode mode, double failures_per_ms) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 2;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.itask.recovery = mode;
  opts.itask.attempt_timeout = FromMs(2.5);  // above worst-case queue wait, so timeouts mean loss
  opts.itask.max_attempts = 100000;           // let restart-all grind to completion
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);
  ITaskRuntime* tasks = runtime.itasks();

  // 3-stage DAG: stage B[i] depends on A[i], C[i] on B[i].
  std::vector<TaskId> stage_a;
  std::vector<TaskId> stage_b;
  for (int i = 0; i < kStageWidth; ++i) {
    const ObjectId a_out = heap->Allocate(4096);
    TaskSpec a;
    a.name = "A";
    a.outputs = {a_out};
    a.compute_cost = kComputeCost;
    stage_a.push_back(tasks->Submit(a));

    const ObjectId b_out = heap->Allocate(4096);
    TaskSpec b;
    b.name = "B";
    b.inputs = {a_out};
    b.outputs = {b_out};
    b.deps = {stage_a.back()};
    b.compute_cost = kComputeCost;
    stage_b.push_back(tasks->Submit(b));

    const ObjectId c_out = heap->Allocate(4096);
    TaskSpec c;
    c.name = "C";
    c.inputs = {b_out};
    c.outputs = {c_out};
    c.deps = {stage_b.back()};
    c.compute_cost = kComputeCost;
    tasks->Submit(c);
  }

  Tick done_at = 0;
  tasks->OnAllComplete([&] { done_at = cluster.engine().Now(); });

  // Failure injector: Poisson-ish chassis power cycles.
  if (failures_per_ms > 0.0) {
    auto rng = std::make_shared<Rng>(99);
    const Tick interval = FromMs(1.0 / failures_per_ms);
    std::uint64_t when = interval;
    // Schedule all injections up front across the horizon.
    while (when < kHorizon) {
      const int victim = static_cast<int>(rng->NextBelow(2));
      cluster.engine().ScheduleAt(when, [&cluster, victim] {
        cluster.faa(victim)->Fail();
      });
      cluster.engine().ScheduleAt(when + kDowntime, [&cluster, victim] {
        cluster.faa(victim)->Recover();
      });
      when += interval + static_cast<Tick>(rng->NextBelow(FromUs(200.0)));
    }
  }

  cluster.engine().RunUntil(kHorizon);
  // Let any in-flight recovery finish up to 4x the horizon.
  cluster.engine().RunUntil(4 * kHorizon);

  Outcome out;
  out.makespan_ms = done_at == 0 ? -1.0 : ToMs(done_at);
  out.attempts = tasks->stats().attempts;
  out.reexecutions = tasks->stats().reexecutions;
  out.restarts = tasks->stats().restarts;
  out.timeouts = tasks->stats().timeouts;
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("P3", "DP#3 ablation (idempotent tasks)",
              "90-task 3-stage DAG on 2 FAAs with injected chassis power cycles");
  std::printf("%-14s %-22s %-14s %-10s %-14s %-10s\n", "failure rate", "recovery mode",
              "makespan (ms)", "attempts", "re-exec/restart", "timeouts");

  BenchReport report("idempotent_tasks");
  for (const double rate : {0.0, 0.5, 1.0, 2.0}) {
    for (const RecoveryMode mode : {RecoveryMode::kReexecute, RecoveryMode::kRestartAll}) {
      const Outcome o = Run(mode, rate);
      {
        char prefix[48];
        std::snprintf(prefix, sizeof(prefix), "rate%.1f/%s/", rate,
                      mode == RecoveryMode::kReexecute ? "reexec" : "restart_all");
        report.Note(std::string(prefix) + "makespan_ms", o.makespan_ms);
        report.Note(std::string(prefix) + "attempts", o.attempts);
        report.Note(std::string(prefix) + "reexecutions", o.reexecutions);
        report.Note(std::string(prefix) + "restarts", o.restarts);
        report.Note(std::string(prefix) + "timeouts", o.timeouts);
      }
      char makespan[32];
      if (o.makespan_ms < 0.0) {
        std::snprintf(makespan, sizeof(makespan), "DNF");
      } else {
        std::snprintf(makespan, sizeof(makespan), "%.2f", o.makespan_ms);
      }
      std::printf("%-14.1f %-22s %-14s %-10llu %llu/%-12llu %-10llu\n", rate,
                  mode == RecoveryMode::kReexecute ? "idempotent re-exec" : "restart-all",
                  makespan, static_cast<unsigned long long>(o.attempts),
                  static_cast<unsigned long long>(o.reexecutions),
                  static_cast<unsigned long long>(o.restarts),
                  static_cast<unsigned long long>(o.timeouts));
    }
  }
  std::printf("(rate = chassis power cycles per ms; expected shape: idempotent re-execution "
              "degrades gracefully with failure rate while restart-all blows up and "
              "eventually cannot finish)\n");
  report.WriteJson();
  PrintFooter();
  return 0;
}
