// D4: §4 DP#4 — the dedicated control lane. The paper argues an in-band
// centralized arbiter is viable because (1) a dedicated control channel
// wastes little bandwidth and (2) the end-to-end RTT of a 64B flit at the
// data link layer is up to ~200 ns unloaded. This bench measures link-layer
// flit RTT unloaded and under data-channel load, with and without strict
// control-lane priority, plus the full arbiter control-plane round trip.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/fabric/link.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

// Echo endpoint: bounces every arriving flit back to its source.
class Echo : public FlitReceiver {
 public:
  explicit Echo(Engine* engine) : engine_(engine) {}

  void ReceiveFlit(const Flit& flit, int /*port*/) override {
    endpoint->ReturnCredit(flit.channel);
    Flit back = flit;
    back.src = flit.dst;
    back.dst = flit.src;
    endpoint->Send(back);
  }

  LinkEndpoint* endpoint = nullptr;

 private:
  Engine* engine_;
};

// Probe endpoint: sends flits, records RTT when the echo returns.
class Probe : public FlitReceiver {
 public:
  explicit Probe(Engine* engine) : engine_(engine) {}

  void ReceiveFlit(const Flit& flit, int /*port*/) override {
    endpoint->ReturnCredit(flit.channel);
    if (flit.channel == Channel::kControl) {
      rtt_ns.Add(ToNs(engine_->Now() - flit.created_at));
    }
  }

  void SendProbe() {
    Flit f;
    f.txn_id = ++txn_;
    f.channel = Channel::kControl;
    f.opcode = Opcode::kCreditQuery;
    f.src = 1;
    f.dst = 2;
    f.payload_bytes = 64;
    f.created_at = engine_->Now();
    endpoint->Send(f);
  }

  void SendNoise(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      Flit f;
      f.txn_id = ++txn_;
      f.channel = Channel::kMem;
      f.opcode = Opcode::kMemWr;
      f.src = 1;
      f.dst = 2;
      f.payload_bytes = 64;
      f.created_at = engine_->Now();
      endpoint->Send(f);
    }
  }

  LinkEndpoint* endpoint = nullptr;
  Summary rtt_ns;

 private:
  Engine* engine_;
  std::uint64_t txn_ = 0;
};

double MeasureRtt(bool loaded, bool control_priority) {
  Engine engine;
  LinkConfig cfg;  // CXL 2.0-like x16, per the Omega preset
  cfg.gigatransfers_per_sec = 32.0;
  cfg.lanes = 16;
  cfg.propagation = FromNs(50.0);
  cfg.credits_per_vc = 32;
  cfg.tx_queue_depth = 256;
  cfg.control_priority = control_priority;
  Link link(&engine, cfg, 3, "probe-link");

  Probe probe(&engine);
  Echo echo(&engine);
  link.end(0).Bind(&probe, 0);
  link.end(1).Bind(&echo, 0);
  probe.endpoint = &link.end(0);
  echo.endpoint = &link.end(1);

  for (int i = 0; i < 50; ++i) {
    engine.Schedule(FromNs(500) * static_cast<Tick>(i), [&] {
      if (loaded) {
        probe.SendNoise(64);  // a 64-flit data burst right before the probe
      }
      probe.SendProbe();
    });
  }
  engine.Run();
  return probe.rtt_ns.Mean();
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("D4", "§4 DP#4 (dedicated control lane)",
              "64B flit link-layer RTT and arbiter control-plane round trip");

  BenchReport report("control_lane");
  const double rtt_unloaded = MeasureRtt(false, true);
  const double rtt_priority = MeasureRtt(true, true);
  const double rtt_shared = MeasureRtt(true, false);
  std::printf("link-layer 64B flit RTT (direct link, CXL2.0 x16, 50 ns propagation):\n");
  std::printf("%-44s %10.1f ns   (paper: 'up to 200 ns' unloaded)\n", "unloaded", rtt_unloaded);
  std::printf("%-44s %10.1f ns\n", "loaded, control on dedicated priority lane", rtt_priority);
  std::printf("%-44s %10.1f ns\n", "loaded, control shares data lanes (no priority)",
              rtt_shared);
  report.Note("rtt_unloaded_ns", rtt_unloaded);
  report.Note("rtt_loaded_priority_ns", rtt_priority);
  report.Note("rtt_loaded_shared_ns", rtt_shared);

  // Full arbiter round trip over the running composable infrastructure.
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 1;
  cfg.num_faas = 1;
  Cluster cluster(cfg);
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});

  // Saturate the fabric with bulk eTrans traffic, then time a reservation.
  ETransDescriptor bulk;
  bulk.src.push_back(Segment{cluster.host(1)->id(), 0, 8 << 20});
  bulk.dst.push_back(Segment{cluster.fam(0)->id(), 0, 8 << 20});
  bulk.attributes.throttled = false;
  runtime.etrans()->Submit(runtime.host_agent(1), bulk);

  Summary ctrl_rtt;
  for (int i = 0; i < 20; ++i) {
    cluster.engine().Schedule(FromUs(20) * static_cast<Tick>(i), [&] {
      const Tick t0 = cluster.engine().Now();
      runtime.arbiter_client(0)->Query(cluster.fam(0)->id(), [&, t0](double) {
        ctrl_rtt.Add(ToUs(cluster.engine().Now() - t0));
      });
    });
  }
  cluster.engine().Run();
  std::printf("\narbiter control-plane op (query->response, loaded fabric): mean %.2f us, "
              "p99 %.2f us over %zu ops\n",
              ctrl_rtt.Mean(), ctrl_rtt.P99(), ctrl_rtt.Count());
  report.Note("arbiter_query_mean_us", ctrl_rtt.Mean());
  report.Note("arbiter_query_p99_us", ctrl_rtt.P99());
  report.Capture("cluster", cluster.engine().metrics());
  report.WriteJson();
  std::printf("(adapter processing dominates; the dedicated lane keeps queueing out of the "
              "control path, enabling compute-fabric co-design via query/reserve/reclaim)\n");
  PrintFooter();
  return 0;
}
