// F1: reproduces paper Figure 1 — Flex Bus layering and the composable
// infrastructure. Builds the figure's topology (n host servers, fabric
// switches, FAM and FAA chassis), runs fabric-manager discovery, prints the
// topology, and traces one 64B load through every layer with its time
// budget.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/topo/cluster.h"

int main() {
  using namespace unifab;
  PrintHeader("F1", "Figure 1",
              "Composable infrastructure: hosts + FS + FAM/FAA chassis, with a layered "
              "load trace");

  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 1;
  cfg.num_switches = 2;
  Cluster cluster(cfg);

  std::printf("%s\n", cluster.fabric().TopologyToString().c_str());

  std::printf("discovery: every adapter routable from every other\n");
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    for (int f = 0; f < cluster.num_fams(); ++f) {
      std::printf("  host%d -> fam%d: %d hop(s)\n", h, f,
                  cluster.fabric().HopCount(cluster.host(h)->id(), cluster.fam(f)->id()));
    }
  }

  // Layered trace of a single remote 64B load (Flex Bus layers, Fig 1a).
  std::printf("\nFlex Bus trace: 64B MemRd host0/core0 -> fam0 (one-way budget, Omega preset)\n");
  std::printf("  transaction layer  host caches (L1+L2 probes)         13.6 ns\n");
  std::printf("  FHA                protocol conversion (request)     400.0 ns\n");
  std::printf("  physical layer     68B flit serialization              1.1 ns per link\n");
  std::printf("  link layer         propagation + CFC credit gate      50.0 ns per link\n");
  std::printf("  fabric switch      PBR lookup + crossbar              90.0 ns per switch\n");
  std::printf("  FEA                protocol termination              350.0 ns\n");
  std::printf("  rDIMM              array access + 64B transfer        62.5 ns\n");
  std::printf("  FHA                completion processing             365.0 ns (return path)\n");

  MemoryHierarchy* core = cluster.host(0)->core(0);
  const Tick t0 = cluster.engine().Now();
  bool done = false;
  core->Access(cluster.FamBase(0), /*is_write=*/false, [&] { done = true; });
  cluster.engine().Run();
  const double measured_ns = ToNs(cluster.engine().Now() - t0);
  std::printf("\nmeasured end-to-end (through %d switch hop(s)): %.1f ns%s\n",
              cluster.fabric().HopCount(cluster.host(0)->id(), cluster.fam(0)->id()) - 1,
              measured_ns, done ? "" : " [INCOMPLETE]");

  BenchReport report("fig1_topology");
  report.Note("remote_load_ns", measured_ns);
  report.Note("switch_hops",
              static_cast<std::uint64_t>(
                  cluster.fabric().HopCount(cluster.host(0)->id(), cluster.fam(0)->id()) - 1));
  report.Capture("cluster", cluster.engine().metrics());
  report.WriteJson();

  // Channel semantics inventory (Fig 1a, transaction layer).
  std::printf("\nCXL channels modelled: %s, %s, %s (+ dedicated %s lane for the arbiter)\n",
              ChannelName(Channel::kIo), ChannelName(Channel::kMem),
              ChannelName(Channel::kCache), ChannelName(Channel::kControl));
  PrintFooter();
  return 0;
}
