// E-HOT: engine hot-path throughput proof for the calendar event queue and
// batched flit pipeline. Re-runs the bench_engine_micro workloads (plus a
// cancellation-heavy one and a fig1-topology closed-loop traffic run) under
// wall-clock timing and compares against the pre-overhaul binary-heap
// baseline measured on this container, emitting events/sec, wall-clock and
// peak RSS to BENCH_engine_hotpath.json. Wall-clock numbers are
// machine-dependent, so this report is deliberately NOT a golden file; the
// speedup ratios are what scripts/check.sh gates on (via --enforce).

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/engine.h"
#include "src/topo/cluster.h"

namespace {

using namespace unifab;

// Pre-overhaul reference throughput: this exact binary built against the
// commit preceding this change (binary-heap-of-std::function EventQueue,
// one flit per link wakeup), median of 3 runs on the dev container.
// Single-CPU box; run-to-run noise is roughly +/-15%, which the 2x
// acceptance bar clears comfortably on the queue-bound workloads. The
// equivalent google-benchmark numbers from the pre-overhaul
// bench_engine_micro were 23.4M/s (ScheduleFire) and 5.08M/s
// (DeepQueue/16384), consistent with these.
struct PrePrBaseline {
  double schedule_fire_eps;
  double deep_queue_eps;
  double cancel_churn_eps;
  double fig1_closed_loop_wall_ms;
};
constexpr PrePrBaseline kBaseline = {
    /*schedule_fire_eps=*/21.8e6,
    /*deep_queue_eps=*/4.69e6,
    /*cancel_churn_eps=*/1.77e6,
    /*fig1_closed_loop_wall_ms=*/158.0,
};

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double PeakRssMb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
}

// Workload 1 — schedule/fire ping-pong: one live event at a time, the
// pure per-event overhead floor (mirrors BM_EngineScheduleFire).
double RunScheduleFire(std::uint64_t n, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    e.Schedule(1, [&sink] { ++sink; });
    e.Step(1);
  }
  const double wall = WallSeconds(t0);
  *fired_out = sink;
  return wall;
}

// Workload 2 — deep queue: 16384 events resident with clustered ticks
// (mirrors BM_EngineDeepQueue/16384), refilled for `rounds` rounds.
double RunDeepQueue(std::uint64_t depth, std::uint64_t rounds, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < depth; ++i) {
      e.Schedule(1 + i % 97, [&sink] { ++sink; });
    }
    e.Run();
  }
  const double wall = WallSeconds(t0);
  *fired_out = sink;
  return wall;
}

// Workload 3 — cancellation churn: every fired event cancels a far-future
// timeout, the MSHR/retry-timer pattern. Exercises Cancel plus the eager
// record-reclaim path; half of all pushed events never fire.
double RunCancelChurn(std::uint64_t batch, std::uint64_t rounds, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t fired = 0;
  std::vector<EventId> timeouts(batch);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      timeouts[i] = e.Schedule(1'000'000, [] {});
    }
    for (std::uint64_t i = 0; i < batch; ++i) {
      const EventId id = timeouts[i];
      e.Schedule(1 + i % 13, [&e, &fired, id] {
        e.Cancel(id);
        ++fired;
      });
    }
    e.Step(batch);  // fires exactly the cancellers; timeouts are all dead
  }
  const double wall = WallSeconds(t0);
  *fired_out = fired;
  return wall;
}

// Workload 4 — fig1 topology under closed-loop load: every core of every
// host keeps one remote FAM access in flight until it has completed
// `per_core` of them. This is the full flit pipeline (caches, adapters,
// links, switches, credits), so it measures the batched link service, not
// just the queue.
struct CoreDriver {
  MemoryHierarchy* core = nullptr;
  std::uint64_t base = 0;
  std::uint64_t done = 0;
  std::uint64_t target = 0;

  void IssueNext() {
    if (done == target) {
      return;
    }
    const std::uint64_t addr = base + (done * 64) % (1ULL << 20);
    core->Access(addr, /*is_write=*/(done % 4) == 3, [this] {
      ++done;
      IssueNext();
    });
  }
};

double RunFig1ClosedLoop(std::uint64_t per_core, std::uint64_t* fired_out,
                         std::uint64_t* loads_out) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 1;
  cfg.num_switches = 2;
  Cluster cluster(cfg);

  std::vector<CoreDriver> drivers;
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    for (int c = 0; c < cluster.host(h)->num_cores(); ++c) {
      CoreDriver d;
      d.core = cluster.host(h)->core(c);
      d.base = cluster.FamBase((h + c) % cluster.num_fams());
      d.target = per_core;
      drivers.push_back(d);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (CoreDriver& d : drivers) {
    d.IssueNext();
  }
  cluster.engine().Run();
  const double wall = WallSeconds(t0);

  std::uint64_t loads = 0;
  for (const CoreDriver& d : drivers) {
    loads += d.done;
  }
  *fired_out = cluster.engine().TotalFired();
  *loads_out = loads;
  return wall;
}

void Report(BenchReport* report, const char* name, double wall, std::uint64_t fired,
            double baseline_eps, double* speedup_out) {
  const double eps = wall > 0.0 ? static_cast<double>(fired) / wall : 0.0;
  std::printf("  %-18s %12" PRIu64 " events  %8.1f ms  %10.2f M events/s", name, fired,
              wall * 1e3, eps / 1e6);
  report->Note(std::string(name) + "/events", fired);
  report->Note(std::string(name) + "/wall_ms", wall * 1e3);
  report->Note(std::string(name) + "/events_per_sec", eps);
  if (baseline_eps > 0.0) {
    const double speedup = eps / baseline_eps;
    std::printf("  %5.2fx over %.2f M/s baseline", speedup, baseline_eps / 1e6);
    report->Note(std::string(name) + "/baseline_events_per_sec", baseline_eps);
    report->Note(std::string(name) + "/speedup", speedup);
    if (speedup_out != nullptr) {
      *speedup_out = speedup;
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }

  PrintHeader("E-HOT", "Engine hot path",
              "Calendar event queue + batched flit service vs the pre-overhaul "
              "binary-heap baseline (events/sec, wall-clock, peak RSS)");

  BenchReport report("engine_hotpath");
  std::uint64_t fired = 0;
  double sf_speedup = 0.0;
  double dq_speedup = 0.0;

  std::printf("workloads:\n");
  double wall = RunScheduleFire(4'000'000, &fired);
  Report(&report, "schedule_fire", wall, fired, kBaseline.schedule_fire_eps, &sf_speedup);

  wall = RunDeepQueue(16384, 128, &fired);
  Report(&report, "deep_queue", wall, fired, kBaseline.deep_queue_eps, &dq_speedup);

  wall = RunCancelChurn(1024, 512, &fired);
  Report(&report, "cancel_churn", wall, fired, kBaseline.cancel_churn_eps, nullptr);

  std::uint64_t loads = 0;
  wall = RunFig1ClosedLoop(2000, &fired, &loads);
  Report(&report, "fig1_closed_loop", wall, fired, 0.0, nullptr);
  report.Note("fig1_closed_loop/loads_completed", loads);
  if (kBaseline.fig1_closed_loop_wall_ms > 0.0) {
    report.Note("fig1_closed_loop/baseline_wall_ms", kBaseline.fig1_closed_loop_wall_ms);
    report.Note("fig1_closed_loop/wall_speedup", kBaseline.fig1_closed_loop_wall_ms / (wall * 1e3));
    std::printf("  fig1 closed loop: %" PRIu64 " loads, %.2fx wall-clock vs %.1f ms baseline\n",
                loads, kBaseline.fig1_closed_loop_wall_ms / (wall * 1e3),
                kBaseline.fig1_closed_loop_wall_ms);
  }

  // Pre-overhaul bench_engine_micro (google-benchmark) reference points,
  // recorded here so the acceptance comparison lives in one artifact.
  report.Note("bench_engine_micro_prepr/schedule_fire_eps", 23.4e6);
  report.Note("bench_engine_micro_prepr/deep_queue_16384_eps", 5.08e6);
  report.Note("bench_engine_micro_prepr/deep_queue_1024_eps", 8.9e6);

  const double rss = PeakRssMb();
  report.Note("peak_rss_mb", rss);
  std::printf("peak RSS: %.1f MiB\n", rss);

  report.WriteJson();
  PrintFooter();

  if (enforce) {
    // Acceptance bar: the queue-bound workload must hold at least 2x over
    // the recorded pre-overhaul baseline. deep_queue is the stable gate
    // (measured ~5x with large margin); schedule_fire is reported but not
    // gated because single-event ping-pong is the noisiest workload on a
    // loaded single-CPU box.
    if (dq_speedup < 2.0) {
      std::fprintf(stderr, "FAIL: deep_queue speedup %.2fx < 2.0x required\n", dq_speedup);
      return 1;
    }
    std::printf("enforce: deep_queue %.2fx >= 2.0x (schedule_fire %.2fx, informational)\n",
                dq_speedup, sf_speedup);
  }
  return 0;
}
