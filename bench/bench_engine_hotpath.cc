// E-HOT: engine hot-path throughput proof for the calendar event queue and
// batched flit pipeline. Re-runs the bench_engine_micro workloads (plus a
// cancellation-heavy one and a fig1-topology closed-loop traffic run) under
// wall-clock timing and compares against the pre-overhaul binary-heap
// baseline measured on this container, emitting events/sec, wall-clock and
// peak RSS to BENCH_engine_hotpath.json. Wall-clock numbers are
// machine-dependent, so this report is deliberately NOT a golden file; the
// speedup ratios are what scripts/check.sh gates on (via --enforce).

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/topo/cluster.h"

namespace {

using namespace unifab;

// Pre-overhaul reference throughput: this exact binary built against the
// commit preceding this change (binary-heap-of-std::function EventQueue,
// one flit per link wakeup), median of 3 runs on the dev container.
// Single-CPU box; run-to-run noise is roughly +/-15%, which the 2x
// acceptance bar clears comfortably on the queue-bound workloads. The
// equivalent google-benchmark numbers from the pre-overhaul
// bench_engine_micro were 23.4M/s (ScheduleFire) and 5.08M/s
// (DeepQueue/16384), consistent with these.
struct PrePrBaseline {
  double schedule_fire_eps;
  double deep_queue_eps;
  double cancel_churn_eps;
  double fig1_closed_loop_wall_ms;
};
constexpr PrePrBaseline kBaseline = {
    /*schedule_fire_eps=*/21.8e6,
    /*deep_queue_eps=*/4.69e6,
    /*cancel_churn_eps=*/1.77e6,
    /*fig1_closed_loop_wall_ms=*/158.0,
};

// Single-thread (1 worker) events/sec floors for the domain-sharded sweep
// workloads, measured on this container after the sharded-engine change and
// recorded deliberately conservative (~30% below the median of 3), mirroring
// bench/baseline/engine_micro_floor.txt. The 1-worker runs are gated at 0.8x
// of these on every box; the >=4x parallel-speedup bar divides the
// multi-worker events/sec by these same floors, and is enforced only where
// the hardware can express it (>= 8 cores).
struct ParallelFloor {
  double fig1_eps;
  double mix_eps;
};
constexpr ParallelFloor kParFloor = {
    /*fig1_eps=*/2.5e6,
    /*mix_eps=*/1.6e6,
};

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double PeakRssMb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
}

// Workload 1 — schedule/fire ping-pong: one live event at a time, the
// pure per-event overhead floor (mirrors BM_EngineScheduleFire).
double RunScheduleFire(std::uint64_t n, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    e.Schedule(1, [&sink] { ++sink; });
    e.Step(1);
  }
  const double wall = WallSeconds(t0);
  *fired_out = sink;
  return wall;
}

// Workload 2 — deep queue: 16384 events resident with clustered ticks
// (mirrors BM_EngineDeepQueue/16384), refilled for `rounds` rounds.
double RunDeepQueue(std::uint64_t depth, std::uint64_t rounds, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < depth; ++i) {
      e.Schedule(1 + i % 97, [&sink] { ++sink; });
    }
    e.Run();
  }
  const double wall = WallSeconds(t0);
  *fired_out = sink;
  return wall;
}

// Workload 3 — cancellation churn: every fired event cancels a far-future
// timeout, the MSHR/retry-timer pattern. Exercises Cancel plus the eager
// record-reclaim path; half of all pushed events never fire.
double RunCancelChurn(std::uint64_t batch, std::uint64_t rounds, std::uint64_t* fired_out) {
  Engine e;
  std::uint64_t fired = 0;
  std::vector<EventId> timeouts(batch);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      timeouts[i] = e.Schedule(1'000'000, [] {});
    }
    for (std::uint64_t i = 0; i < batch; ++i) {
      const EventId id = timeouts[i];
      e.Schedule(1 + i % 13, [&e, &fired, id] {
        e.Cancel(id);
        ++fired;
      });
    }
    e.Step(batch);  // fires exactly the cancellers; timeouts are all dead
  }
  const double wall = WallSeconds(t0);
  *fired_out = fired;
  return wall;
}

// Workload 4 — fig1 topology under closed-loop load: every core of every
// host keeps one remote FAM access in flight until it has completed
// `per_core` of them. This is the full flit pipeline (caches, adapters,
// links, switches, credits), so it measures the batched link service, not
// just the queue.
struct CoreDriver {
  MemoryHierarchy* core = nullptr;
  std::uint64_t base = 0;
  std::uint64_t done = 0;
  std::uint64_t target = 0;

  void IssueNext() {
    if (done == target) {
      return;
    }
    const std::uint64_t addr = base + (done * 64) % (1ULL << 20);
    core->Access(addr, /*is_write=*/(done % 4) == 3, [this] {
      ++done;
      IssueNext();
    });
  }
};

double RunFig1ClosedLoop(std::uint64_t per_core, int workers, std::uint64_t* fired_out,
                         std::uint64_t* loads_out) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 1;
  cfg.num_switches = 2;
  cfg.shard_workers = workers;  // pin: don't let UNIFAB_SHARDS skew the bench
  Cluster cluster(cfg);

  std::vector<CoreDriver> drivers;
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    for (int c = 0; c < cluster.host(h)->num_cores(); ++c) {
      CoreDriver d;
      d.core = cluster.host(h)->core(c);
      d.base = cluster.FamBase((h + c) % cluster.num_fams());
      d.target = per_core;
      drivers.push_back(d);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (CoreDriver& d : drivers) {
    d.IssueNext();
  }
  cluster.engine().Run();
  const double wall = WallSeconds(t0);

  std::uint64_t loads = 0;
  for (const CoreDriver& d : drivers) {
    loads += d.done;
  }
  *fired_out = cluster.engine().TotalFired();
  *loads_out = loads;
  return wall;
}

// Workload 5 — multi-chassis eTrans + unified-heap mix: two hosts running
// zipf-skewed closed-loop heap reads against fabric-resident objects while
// two rotating 1 MiB eTrans bulk copies hop between four FAM chassis. With
// shard_by_domain this spreads over 7 shards (root + 2 switches + 4 FAMs),
// so it is the shard-scaling counterpart of the runtime-heavy benches.
double RunEtransHeapMix(Tick horizon, int workers, std::uint64_t* fired_out) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 4;
  cfg.num_faas = 1;
  cfg.num_switches = 2;
  cfg.shard_workers = workers;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 2ULL << 20;  // working set >> fast tier
  UniFabricRuntime runtime(&cluster, opts);

  constexpr int kObjects = 16384;
  std::vector<ObjectId> objects[2];
  ZipfGenerator zipf0(11, 0.9, kObjects);
  ZipfGenerator zipf1(13, 0.9, kObjects);
  ZipfGenerator* zipfs[2] = {&zipf0, &zipf1};
  for (int h = 0; h < 2; ++h) {
    objects[h].reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      objects[h].push_back(runtime.heap(h)->Allocate(256, /*tier=*/1));
    }
  }

  std::uint64_t reads = 0;
  auto loop = std::make_shared<std::function<void(int)>>();
  *loop = [&runtime, &objects, &zipfs, &reads, loop](int h) {
    const ObjectId id = objects[h][zipfs[h]->Next()];
    runtime.heap(h)->Read(id, [&reads, loop, h] {
      ++reads;
      (*loop)(h);
    });
  };
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 4; ++i) {  // four reader threads per host
      (*loop)(h);
    }
  }

  auto pump = std::make_shared<std::function<void(int)>>();
  *pump = [&cluster, &runtime, pump](int lane) {
    ETransDescriptor desc;
    const int src = lane % cluster.num_fams();
    const int dst = (lane + 1) % cluster.num_fams();
    desc.src.push_back(Segment{cluster.fam(src)->id(), 8ULL << 20, 1ULL << 20});
    desc.dst.push_back(Segment{cluster.fam(dst)->id(), 12ULL << 20, 1ULL << 20});
    desc.ownership = Ownership::kInitiator;
    runtime.etrans()
        ->Submit(runtime.host_agent(lane % 2), desc)
        .Then([pump, lane](const TransferResult&) { (*pump)(lane + 2); });
  };
  (*pump)(0);
  (*pump)(1);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.engine().RunUntil(horizon);
  const double wall = WallSeconds(t0);
  *fired_out = cluster.engine().TotalFired();
  return wall;
}

void Report(BenchReport* report, const char* name, double wall, std::uint64_t fired,
            double baseline_eps, double* speedup_out) {
  const double eps = wall > 0.0 ? static_cast<double>(fired) / wall : 0.0;
  std::printf("  %-18s %12" PRIu64 " events  %8.1f ms  %10.2f M events/s", name, fired,
              wall * 1e3, eps / 1e6);
  report->Note(std::string(name) + "/events", fired);
  report->Note(std::string(name) + "/wall_ms", wall * 1e3);
  report->Note(std::string(name) + "/events_per_sec", eps);
  if (baseline_eps > 0.0) {
    const double speedup = eps / baseline_eps;
    std::printf("  %5.2fx over %.2f M/s baseline", speedup, baseline_eps / 1e6);
    report->Note(std::string(name) + "/baseline_events_per_sec", baseline_eps);
    report->Note(std::string(name) + "/speedup", speedup);
    if (speedup_out != nullptr) {
      *speedup_out = speedup;
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }

  PrintHeader("E-HOT", "Engine hot path",
              "Calendar event queue + batched flit service vs the pre-overhaul "
              "binary-heap baseline (events/sec, wall-clock, peak RSS)");

  BenchReport report("engine_hotpath");
  std::uint64_t fired = 0;
  double sf_speedup = 0.0;
  double dq_speedup = 0.0;

  std::printf("workloads:\n");
  double wall = RunScheduleFire(4'000'000, &fired);
  Report(&report, "schedule_fire", wall, fired, kBaseline.schedule_fire_eps, &sf_speedup);

  wall = RunDeepQueue(16384, 128, &fired);
  Report(&report, "deep_queue", wall, fired, kBaseline.deep_queue_eps, &dq_speedup);

  wall = RunCancelChurn(1024, 512, &fired);
  Report(&report, "cancel_churn", wall, fired, kBaseline.cancel_churn_eps, nullptr);

  std::uint64_t loads = 0;
  wall = RunFig1ClosedLoop(2000, /*workers=*/1, &fired, &loads);
  Report(&report, "fig1_closed_loop", wall, fired, 0.0, nullptr);
  report.Note("fig1_closed_loop/loads_completed", loads);
  if (kBaseline.fig1_closed_loop_wall_ms > 0.0) {
    report.Note("fig1_closed_loop/baseline_wall_ms", kBaseline.fig1_closed_loop_wall_ms);
    report.Note("fig1_closed_loop/wall_speedup", kBaseline.fig1_closed_loop_wall_ms / (wall * 1e3));
    std::printf("  fig1 closed loop: %" PRIu64 " loads, %.2fx wall-clock vs %.1f ms baseline\n",
                loads, kBaseline.fig1_closed_loop_wall_ms / (wall * 1e3),
                kBaseline.fig1_closed_loop_wall_ms);
  }

  // Shard-scaling sweep (DESIGN.md §6e): the same fixed domain partition
  // executed by 1/2/4/8 worker threads. Simulated work is identical in every
  // configuration, so events/sec ratios are pure parallel speedup.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("shard sweep (%u hardware threads):\n", cores);
  double fig1_w1_eps = 0.0;
  double mix_w1_eps = 0.0;
  double fig1_best_speedup = 0.0;
  double mix_best_speedup = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    std::uint64_t sweep_loads = 0;
    const double fig1_wall = RunFig1ClosedLoop(1000, workers, &fired, &sweep_loads);
    const double fig1_eps = fig1_wall > 0.0 ? static_cast<double>(fired) / fig1_wall : 0.0;
    std::uint64_t mix_fired = 0;
    const double mix_wall = RunEtransHeapMix(FromMs(10.0), workers, &mix_fired);
    const double mix_eps = mix_wall > 0.0 ? static_cast<double>(mix_fired) / mix_wall : 0.0;
    if (workers == 1) {
      fig1_w1_eps = fig1_eps;
      mix_w1_eps = mix_eps;
    }
    const double fig1_speedup = fig1_eps / kParFloor.fig1_eps;
    const double mix_speedup = mix_eps / kParFloor.mix_eps;
    fig1_best_speedup = fig1_speedup > fig1_best_speedup ? fig1_speedup : fig1_best_speedup;
    mix_best_speedup = mix_speedup > mix_best_speedup ? mix_speedup : mix_best_speedup;
    std::printf("  %d worker(s): fig1 %8.2f M events/s (%.2fx floor)   mix %8.2f M events/s "
                "(%.2fx floor)\n",
                workers, fig1_eps / 1e6, fig1_speedup, mix_eps / 1e6, mix_speedup);
    const std::string prefix = "shard_sweep/workers" + std::to_string(workers);
    report.Note(prefix + "/fig1_events", fired);
    report.Note(prefix + "/fig1_events_per_sec", fig1_eps);
    report.Note(prefix + "/mix_events", mix_fired);
    report.Note(prefix + "/mix_events_per_sec", mix_eps);
  }
  report.Note("shard_sweep/hardware_threads", static_cast<std::uint64_t>(cores));
  report.Note("shard_sweep/fig1_floor_events_per_sec", kParFloor.fig1_eps);
  report.Note("shard_sweep/mix_floor_events_per_sec", kParFloor.mix_eps);

  // Pre-overhaul bench_engine_micro (google-benchmark) reference points,
  // recorded here so the acceptance comparison lives in one artifact.
  report.Note("bench_engine_micro_prepr/schedule_fire_eps", 23.4e6);
  report.Note("bench_engine_micro_prepr/deep_queue_16384_eps", 5.08e6);
  report.Note("bench_engine_micro_prepr/deep_queue_1024_eps", 8.9e6);

  const double rss = PeakRssMb();
  report.Note("peak_rss_mb", rss);
  std::printf("peak RSS: %.1f MiB\n", rss);

  report.WriteJson();
  PrintFooter();

  if (enforce) {
    // Acceptance bar: the queue-bound workload must hold at least 2x over
    // the recorded pre-overhaul baseline. deep_queue is the stable gate
    // (measured ~5x with large margin); schedule_fire is reported but not
    // gated because single-event ping-pong is the noisiest workload on a
    // loaded single-CPU box.
    if (dq_speedup < 2.0) {
      std::fprintf(stderr, "FAIL: deep_queue speedup %.2fx < 2.0x required\n", dq_speedup);
      return 1;
    }
    std::printf("enforce: deep_queue %.2fx >= 2.0x (schedule_fire %.2fx, informational)\n",
                dq_speedup, sf_speedup);

    // Shard-sweep gates. The 1-worker runs hold the recorded single-thread
    // floors (20% regression budget, like the engine-micro floor gate). The
    // >=4x parallel bar needs cores to scale onto, so it is enforced only on
    // >= 8 hardware threads and reported informationally elsewhere (this
    // dev container has 1 CPU).
    if (fig1_w1_eps < 0.8 * kParFloor.fig1_eps || mix_w1_eps < 0.8 * kParFloor.mix_eps) {
      std::fprintf(stderr,
                   "FAIL: 1-worker sharded throughput regressed >20%% below floor "
                   "(fig1 %.2fM vs %.2fM, mix %.2fM vs %.2fM events/s)\n",
                   fig1_w1_eps / 1e6, kParFloor.fig1_eps / 1e6, mix_w1_eps / 1e6,
                   kParFloor.mix_eps / 1e6);
      return 1;
    }
    if (cores >= 8) {
      if (fig1_best_speedup < 4.0 || mix_best_speedup < 4.0) {
        std::fprintf(stderr,
                     "FAIL: shard sweep best speedup %.2fx (fig1) / %.2fx (mix) < 4.0x "
                     "required on %u hardware threads\n",
                     fig1_best_speedup, mix_best_speedup, cores);
        return 1;
      }
      std::printf("enforce: shard sweep fig1 %.2fx, mix %.2fx >= 4.0x over 1-thread floor\n",
                  fig1_best_speedup, mix_best_speedup);
    } else {
      std::printf("enforce: shard sweep 4x bar skipped (%u hardware thread(s) < 8); "
                  "best fig1 %.2fx, mix %.2fx over floor (informational)\n",
                  cores, fig1_best_speedup, mix_best_speedup);
    }
  }
  return 0;
}
