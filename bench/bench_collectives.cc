// E-COLL: collective data movement over eTrans — AllReduce sweep across
// group size, algorithm (ring vs binomial tree vs auto), topology span
// (one switch vs two), payload size, and eTrans chunk size; plus a
// mid-collective chassis-flap campaign. Asserts the topology-aware
// crossover (ring wins large intra-switch payloads, tree wins small
// cross-switch ones) and byte conservation under faults; violations are
// bench failures.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/collect_algo.h"
#include "src/core/runtime.h"
#include "src/topo/faults.h"

namespace unifab {
namespace {

struct Outcome {
  bool ok = false;
  double latency_us = 0.0;
  std::uint64_t bytes = 0;
  CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto;
  std::uint64_t step_retries = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t audit_violations = 0;
};

// One collective on a fresh cluster: n FAA members, everything at t=0, so
// the completion tick is the collective's latency.
Outcome RunOne(int n, int switches, std::uint64_t bytes, CollectiveAlgorithm algo,
               std::uint64_t transfer_chunk, const std::string& fault_plan) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = n;
  cfg.num_switches = switches;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.collect.transfer_chunk_bytes = transfer_chunk;
  UniFabricRuntime runtime(&cluster, opts);
  Engine& engine = cluster.engine();

  FaultScheduler faults(&engine, &cluster.fabric());
  if (!fault_plan.empty()) {
    faults.RegisterChassis("faa1", cluster.faa(1), cluster.fabric().LinkTo(cluster.faa(1)->id()));
    const FaultPlan plan = FaultPlan::Parse(fault_plan);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad fault plan: %s\n", fault_plan.c_str());
      return Outcome{};
    }
    faults.Schedule(plan);
  }

  CollectiveGroup group;
  for (int i = 0; i < n; ++i) {
    group.members.push_back(CollectiveMember{cluster.faa(i)->id(), 1ULL << 20});
  }

  CollectiveFuture f = runtime.collect()->AllReduce(group, bytes, algo);
  engine.Run();

  Outcome out;
  if (!f.Ready()) {
    return out;  // wedged: ok stays false
  }
  const CollectiveResult& r = f.Value();
  out.ok = r.ok && r.status == TransferStatus::kOk;
  out.latency_us = ToUs(r.completed_at);
  out.bytes = r.bytes;
  out.algo = r.algorithm;
  out.step_retries = runtime.collect()->stats().step_retries;
  out.faults_injected = faults.stats().faults_injected;
  out.audit_violations = engine.audit().Sweep().size();
  out.ok = out.ok && out.audit_violations == 0;
  return out;
}

std::string Label(int n, const char* topo, std::uint64_t bytes, const char* algo) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n%d_%s_%lluKiB_%s", n, topo,
                static_cast<unsigned long long>(bytes / 1024), algo);
  return buf;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("E-COLL", "collective sweep",
              "AllReduce over FAA groups: ring vs binomial tree vs auto across group "
              "size, switch span, payload, chunk size, and chassis flaps");

  BenchReport report("collectives");
  bool failed = false;

  constexpr std::uint64_t kSmall = 4 * 1024;
  constexpr std::uint64_t kLarge = 256 * 1024;
  constexpr std::uint64_t kChunk = 4 * 1024;

  // --- Algorithm sweep: intra-switch (span 2) and cross-switch (span > 2).
  std::printf("%-26s %-10s %-12s %-10s %-8s\n", "scenario", "algo", "latency us", "MB moved",
              "ok");
  struct Case {
    int n;
    int switches;
    std::uint64_t bytes;
  };
  const std::vector<Case> cases = {
      {4, 1, kLarge}, {8, 1, kLarge}, {16, 1, kLarge},  // large intra: ring country
      {4, 2, kSmall}, {8, 2, kSmall}, {16, 2, kSmall},  // small cross: tree country
  };
  const std::vector<std::pair<const char*, CollectiveAlgorithm>> algos = {
      {"ring", CollectiveAlgorithm::kRing},
      {"tree", CollectiveAlgorithm::kBinomialTree},
      {"auto", CollectiveAlgorithm::kAuto},
  };
  for (const Case& c : cases) {
    const char* topo = c.switches == 1 ? "intra" : "cross";
    double ring_us = 0.0;
    double tree_us = 0.0;
    for (const auto& [aname, algo] : algos) {
      const Outcome out = RunOne(c.n, c.switches, c.bytes, algo, kChunk, "");
      failed = failed || !out.ok;
      const std::string label = Label(c.n, topo, c.bytes, aname);
      std::printf("%-26s %-10s %-12.1f %-10.2f %-8s\n", label.c_str(),
                  CollectiveAlgorithmName(out.algo), out.latency_us,
                  static_cast<double>(out.bytes) / (1024.0 * 1024.0), out.ok ? "yes" : "NO");
      report.Note(label + "/latency_us", out.latency_us);
      report.Note(label + "/bytes", out.bytes);
      report.Note(label + "/algo", CollectiveAlgorithmName(out.algo));
      if (algo == CollectiveAlgorithm::kRing) {
        ring_us = out.latency_us;
      }
      if (algo == CollectiveAlgorithm::kBinomialTree) {
        tree_us = out.latency_us;
      }
    }
    // The topology-aware crossover the planner banks on must hold in the
    // simulated fabric, not just the cost model.
    if (c.bytes == kLarge && c.switches == 1 && !(ring_us < tree_us)) {
      std::fprintf(stderr, "FAIL: ring (%.1f us) not faster than tree (%.1f us) for "
                           "large intra-switch AllReduce n=%d\n",
                   ring_us, tree_us, c.n);
      failed = true;
    }
    if (c.bytes == kSmall && c.switches == 2 && c.n >= 8 && !(tree_us < ring_us)) {
      std::fprintf(stderr, "FAIL: tree (%.1f us) not faster than ring (%.1f us) for "
                           "small cross-switch AllReduce n=%d\n",
                   tree_us, ring_us, c.n);
      failed = true;
    }
  }

  // --- Chunk-size sweep: eTrans pipelining granularity, ring n=8 large. ---
  std::printf("\n%-26s %-12s\n", "chunk sweep (ring n=8)", "latency us");
  for (const std::uint64_t chunk : {std::uint64_t{4} << 10, std::uint64_t{16} << 10,
                                    std::uint64_t{64} << 10}) {
    const Outcome out = RunOne(8, 1, kLarge, CollectiveAlgorithm::kRing, chunk, "");
    failed = failed || !out.ok;
    char key[48];
    std::snprintf(key, sizeof(key), "chunk_%lluKiB",
                  static_cast<unsigned long long>(chunk / 1024));
    std::printf("%-26s %-12.1f\n", key, out.latency_us);
    report.Note(std::string(key) + "/latency_us", out.latency_us);
  }

  // --- Fault campaign: flap a member chassis mid-collective. -------------
  std::printf("\n%-26s %-12s %-9s %-8s %-8s\n", "fault campaign", "latency us", "retries",
              "faults", "ok");
  const std::uint64_t kFaultBytes = 128 * 1024;
  const Outcome out = RunOne(4, 1, kFaultBytes, CollectiveAlgorithm::kRing, kChunk,
                             "flap faa1 start=50 period=800 down=250 cycles=3");
  const std::uint64_t want_bytes =
      BuildAllReduce(CollectiveAlgorithm::kRing, 4, kFaultBytes).TotalBytes();
  const bool conserved = out.bytes == want_bytes;
  if (!out.ok || !conserved || out.faults_injected == 0) {
    std::fprintf(stderr, "FAIL: flap campaign ok=%d bytes=%llu want=%llu faults=%llu\n", out.ok,
                 static_cast<unsigned long long>(out.bytes),
                 static_cast<unsigned long long>(want_bytes),
                 static_cast<unsigned long long>(out.faults_injected));
    failed = true;
  }
  std::printf("%-26s %-12.1f %-9llu %-8llu %-8s\n", "flap_faa1", out.latency_us,
              static_cast<unsigned long long>(out.step_retries),
              static_cast<unsigned long long>(out.faults_injected),
              out.ok && conserved ? "yes" : "NO");
  report.Note("flap/latency_us", out.latency_us);
  report.Note("flap/step_retries", out.step_retries);
  report.Note("flap/faults_injected", out.faults_injected);
  report.Note("flap/bytes", out.bytes);
  report.Note("flap/bytes_conserved", conserved ? std::uint64_t{1} : std::uint64_t{0});

  report.Note("failed", failed ? std::uint64_t{1} : std::uint64_t{0});
  report.WriteJson();
  PrintFooter();
  return failed ? 1 : 0;
}
