// T2: reproduces paper Table 2 — cacheline (64B) read/write latency and
// single-core throughput at each memory-hierarchy level of the Omega
// Fabric testbed (L1, L2, local DIMM, remote DIMM through the fabric).

#include <cctype>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/topo/cluster.h"

namespace unifab {
namespace {

ClusterConfig OneHostOneFam() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 0;
  return cfg;
}

// Dependent-access (pointer-chase) latency in ns.
double Latency(std::uint64_t base, std::uint64_t stride, int count, bool is_write,
               std::uint64_t warm_set) {
  Cluster cluster(OneHostOneFam());
  MemoryHierarchy* core = cluster.host(0)->core(0);

  // Optional warmup pass over a working set (for cache-resident rows).
  if (warm_set != 0) {
    for (std::uint64_t a = 0; a < warm_set; a += 64) {
      core->Access(base + a, false, nullptr);
    }
    cluster.engine().Run();
  }

  auto remaining = std::make_shared<int>(count);
  auto addr = std::make_shared<std::uint64_t>(base);
  Summary lat;
  std::function<void()> next = [&, remaining, addr]() {
    if (--*remaining <= 0) {
      return;
    }
    *addr = base + (*addr - base + stride) % (warm_set != 0 ? warm_set : ~0ULL);
    const Tick t0 = cluster.engine().Now();
    core->Access(*addr, is_write, [&lat, &cluster, t0, cont = next] {
      lat.Add(ToNs(cluster.engine().Now() - t0));
      cont();
    });
  };
  // Kick off: measure each access individually, fully serialized.
  const Tick t0 = cluster.engine().Now();
  core->Access(*addr, is_write, [&lat, &cluster, t0, cont = next] {
    lat.Add(ToNs(cluster.engine().Now() - t0));
    cont();
  });
  cluster.engine().Run();
  return lat.Mean();
}

// Saturated independent-access throughput in MOPS.
double Throughput(std::uint64_t base, std::uint64_t stride, std::uint64_t working_set,
                  bool is_write, Tick duration, std::uint64_t warm_set) {
  Cluster cluster(OneHostOneFam());
  MemoryHierarchy* core = cluster.host(0)->core(0);
  if (warm_set != 0) {
    for (std::uint64_t a = 0; a < warm_set; a += 64) {
      core->Access(base + a, false, nullptr);
    }
    cluster.engine().Run();
  }
  auto completed = std::make_shared<std::uint64_t>(0);
  auto addr = std::make_shared<std::uint64_t>(base);
  std::function<void()> issue = [&cluster, core, completed, addr, base, stride, working_set,
                                 is_write, &issue] {
    ++*completed;
    *addr = base + (*addr - base + stride) % working_set;
    core->Access(*addr, is_write, issue);
  };
  for (int i = 0; i < 64; ++i) {
    *addr = base + (*addr - base + stride) % working_set;
    core->Access(*addr, is_write, issue);
  }
  cluster.engine().RunFor(duration);
  return static_cast<double>(*completed) / ToUs(duration);
}

struct Row {
  const char* level;
  double paper_rd_lat, paper_wr_lat, paper_rd_mops, paper_wr_mops;
  double rd_lat, wr_lat, rd_mops, wr_mops;
};

void Print(const Row& r) {
  std::printf("%-26s %8.1f/%-8.1f %9.1f/%-9.1f %8.1f/%-8.1f %9.1f/%-9.1f\n", r.level,
              r.paper_rd_lat, r.paper_wr_lat, r.paper_rd_mops, r.paper_wr_mops, r.rd_lat,
              r.wr_lat, r.rd_mops, r.wr_mops);
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("T2", "Table 2",
              "64B read/write latency (ns) and throughput (MOPS), paper vs simulated");
  std::printf("%-26s %-18s %-20s %-18s %-20s\n", "Level", "paper lat R/W", "paper MOPS R/W",
              "sim lat R/W", "sim MOPS R/W");

  const std::uint64_t kRemoteBase = 1ULL << 40;

  // L1: 4 KiB working set, warm.
  Row l1{"L1 Cache",
         5.4, 5.4, 357.4, 355.4,
         Latency(0, 64, 200, false, 4096),
         Latency(0, 64, 200, true, 4096),
         Throughput(0, 64, 4096, false, FromUs(50), 4096),
         Throughput(0, 64, 4096, true, FromUs(50), 4096)};
  Print(l1);

  // L2: 256 KiB working set (beyond L1, inside L2); probe lines evicted
  // from L1 -> L2 hits.
  Row l2{"L2 Cache",
         13.6, 12.5, 143.4, 154.5,
         Latency(0, 8256, 200, false, 256 * 1024),
         Latency(0, 8256, 200, true, 256 * 1024),
         Throughput(0, 8256, 256 * 1024, false, FromUs(50), 256 * 1024),
         Throughput(0, 8256, 256 * 1024, true, FromUs(50), 256 * 1024)};
  Print(l2);

  // Local memory: non-power-of-two large stride defeats caches and spreads
  // banks.
  Row local{"Local Memory",
            111.7, 119.3, 29.4, 16.9,
            Latency(0, (1 << 20) + 4160, 100, false, 0),
            Latency(0, (1 << 20) + 4160, 100, true, 0),
            Throughput(0, 4160, 1ULL << 30, false, FromUs(100), 0),
            Throughput(0, 4160, 1ULL << 30, true, FromUs(100), 0)};
  Print(local);

  Row remote{"Remote Memory",
             1575.3, 1613.3, 2.5, 2.5,
             Latency(kRemoteBase, (1 << 20) + 4160, 48, false, 0),
             Latency(kRemoteBase, (1 << 20) + 4160, 48, true, 0),
             Throughput(kRemoteBase, 4160, 1ULL << 30, false, FromUs(300), 0),
             Throughput(kRemoteBase, 4160, 1ULL << 30, true, FromUs(300), 0)};
  Print(remote);

  std::printf("\nshape checks: remote/local read latency = %.1fx (paper: 14.1x, 'nearly 10x "
              "slower than local complex')\n",
              remote.rd_lat / local.rd_lat);

  BenchReport report("table2_hierarchy");
  for (const Row* r : {&l1, &l2, &local, &remote}) {
    std::string key(r->level);
    for (char& c : key) {
      c = c == ' ' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    report.Note(key + "/read_latency_ns", r->rd_lat);
    report.Note(key + "/write_latency_ns", r->wr_lat);
    report.Note(key + "/read_mops", r->rd_mops);
    report.Note(key + "/write_mops", r->wr_mops);
  }
  report.Note("remote_over_local_read", remote.rd_lat / local.rd_lat);
  report.WriteJson();
  PrintFooter();
  return 0;
}
