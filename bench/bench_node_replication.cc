// Extension ablation: node replication over a fabric-attached CC-NUMA node
// (DP#2 names node replication as the technique that "would benefit
// fabric-attached CC-NUMA memory nodes"; §5 promises data structures
// specially optimized per node type). Compares a NodeReplicated structure
// (per-host replicas + shared op log) against a centralized shared object
// (16 coherence blocks scanned per read) across read/write mixes and host
// counts.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/replicated.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/sim/random.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

struct Counter {
  std::int64_t value = 0;
};
struct AddOp {
  std::int64_t delta;
};

struct Rig {
  explicit Rig(int hosts) : fabric(&engine, 61) {
    auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "fam");
    AdapterConfig fea_cfg = OmegaEndpointAdapter();
    fea_cfg.request_proc_latency = FromNs(50);
    auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", dram.get());
    fabric.Connect(sw, fea, OmegaLink());
    fea_dispatch = std::make_unique<MessageDispatcher>(fea);
    CcNumaConfig cfg;
    dir = std::make_unique<DirectoryController>(&engine, cfg, fea_dispatch.get(), dram.get(),
                                                "dir");
    for (int i = 0; i < hosts; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric.AddHostAdapter(fha, "h" + std::to_string(i));
      fabric.Connect(sw, adapter, OmegaLink());
      dispatch.push_back(std::make_unique<MessageDispatcher>(adapter));
      ports.push_back(std::make_unique<CcNumaPort>(&engine, cfg, dispatch.back().get(),
                                                   dir.get(), "p" + std::to_string(i)));
    }
    fabric.ConfigureRouting();
  }

  Engine engine;
  FabricInterconnect fabric;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<MessageDispatcher> fea_dispatch;
  std::unique_ptr<DirectoryController> dir;
  std::vector<std::unique_ptr<MessageDispatcher>> dispatch;
  std::vector<std::unique_ptr<CcNumaPort>> ports;
};

struct Result {
  double read_mean_ns;
  double op_mean_ns;
  std::uint64_t total_ops;
};

// Closed loop per host: read with probability (1 - write_frac), else write.
template <typename Structure>
Result Drive(Rig& rig, Structure& s, std::vector<int> handles, double write_frac,
             Tick horizon) {
  auto rng = std::make_shared<Rng>(5);
  auto total = std::make_shared<std::uint64_t>(0);
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (std::size_t h = 0; h < handles.size(); ++h) {
    auto loop = std::make_shared<std::function<void()>>();
    const int handle = handles[h];
    *loop = [&s, handle, rng, total, write_frac, loop] {
      ++*total;
      if (rng->NextBool(write_frac)) {
        s.Execute(handle, AddOp{1}, [loop] { (*loop)(); });
      } else {
        s.Read(handle, [loop](const Counter&) { (*loop)(); });
      }
    };
    loops.push_back(loop);
    (*loop)();
  }
  rig.engine.RunUntil(horizon);
  Result r;
  r.read_mean_ns = s.stats().read_latency_ns.Empty() ? 0.0 : s.stats().read_latency_ns.Mean();
  r.op_mean_ns = 0.0;
  r.total_ops = *total;
  return r;
}

BenchReport* g_report = nullptr;

void RunMix(int hosts, double write_frac) {
  const Tick horizon = FromMs(2.0);

  Rig rig_nr(hosts);
  NodeReplicated<Counter, AddOp> nr(&rig_nr.engine, 0x100000, 1 << 20,
                                    [](Counter& c, const AddOp& op) { c.value += op.delta; });
  std::vector<int> nr_handles;
  for (auto& p : rig_nr.ports) {
    nr_handles.push_back(nr.AddReplica(p.get()));
  }
  const Result nr_res = Drive(rig_nr, nr, nr_handles, write_frac, horizon);

  Rig rig_c(hosts);
  CentralizedShared<Counter, AddOp> central(
      &rig_c.engine, 0x100000, [](Counter& c, const AddOp& op) { c.value += op.delta; },
      /*state_blocks=*/16);
  std::vector<int> c_handles;
  for (auto& p : rig_c.ports) {
    c_handles.push_back(central.AddHost(p.get()));
  }
  const Result c_res = Drive(rig_c, central, c_handles, write_frac, horizon);

  char mix[16];
  std::snprintf(mix, sizeof(mix), "%.0f%%", write_frac * 100);
  char rg[16];
  std::snprintf(rg, sizeof(rg), "%.2fx", c_res.read_mean_ns / nr_res.read_mean_ns);
  char tg[16];
  std::snprintf(tg, sizeof(tg), "%.2fx",
                static_cast<double>(nr_res.total_ops) / static_cast<double>(c_res.total_ops));
  std::printf("%-8d %-13s %-18.1f %-18.1f %-12s %-14s\n", hosts, mix, nr_res.read_mean_ns,
              c_res.read_mean_ns, rg, tg);
  if (g_report != nullptr) {
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "hosts%d/writes%.0f%%/", hosts, write_frac * 100);
    g_report->Note(std::string(prefix) + "nr_read_ns", nr_res.read_mean_ns);
    g_report->Note(std::string(prefix) + "central_read_ns", c_res.read_mean_ns);
    g_report->Note(std::string(prefix) + "nr_ops", nr_res.total_ops);
    g_report->Note(std::string(prefix) + "central_ops", c_res.total_ops);
  }
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("X1", "extension ablation (node replication on CC-NUMA)",
              "NodeReplicated (per-host replicas + op log) vs centralized 1KiB shared object");
  std::printf("%-8s %-13s %-18s %-18s %-12s %-14s\n", "hosts", "write mix", "NR read (ns)",
              "central read (ns)", "read gain", "tput gain");
  BenchReport report("node_replication");
  g_report = &report;
  for (const int hosts : {2, 3, 4}) {
    for (const double wf : {0.0, 0.1, 0.5}) {
      RunMix(hosts, wf);
    }
  }
  g_report = nullptr;
  report.WriteJson();
  std::printf("(expected shape: replicas turn shared reads into local-port hits; the gap "
              "grows with host count and shrinks as the write fraction rises — the same "
              "trade NrOS documents, realized on a fabric memory node)\n");
  PrintFooter();
  return 0;
}
