// R1: failure recovery — eTrans deadline/retry machinery under scripted
// link-flap campaigns. Closed-loop delegated transfers stream host -> FAM
// while the FaultScheduler flaps the FAM uplink at increasing rates; the
// sweep reports goodput, tail latency, and the recovery counters
// (retries, reroutes, aborts, time-to-recover). Every submitted transfer
// must reach a terminal state — wedged futures are reported and count as a
// bench failure.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/stats.h"
#include "src/topo/faults.h"

namespace unifab {
namespace {

constexpr Tick kHorizon = FromMs(40.0);
constexpr Tick kDrain = FromMs(80.0);  // post-horizon grace for retries
constexpr std::uint64_t kTransferBytes = 64 * 1024;
constexpr int kStreams = 4;

struct Scenario {
  std::string name;
  std::string plan;  // FaultPlan source; empty = fault-free baseline
};

struct Outcome {
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t wedged = 0;  // futures with no terminal result: must be 0
  double goodput_mbps = 0.0;
  double p99_us = 0.0;
  ETransRecoveryStats recovery;
};

Outcome Run(const Scenario& scenario) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 1;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  UniFabricRuntime runtime(&cluster, opts);
  Engine& engine = cluster.engine();

  FaultScheduler faults(&engine, &cluster.fabric());
  faults.RegisterChassis("fam0", cluster.fam(0), cluster.fabric().LinkTo(cluster.fam(0)->id()));
  const FaultPlan plan = FaultPlan::Parse(scenario.plan);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad plan for %s\n", scenario.name.c_str());
  }
  faults.Schedule(plan);

  // Closed-loop streams: each completion immediately submits the next
  // transfer, so goodput directly reflects recovery stalls.
  MigrationAgent* agent = runtime.host_agent(0);
  ETransEngine* etrans = runtime.etrans();
  const PbrId host_node = cluster.host(0)->id();
  const PbrId fam_node = cluster.fam(0)->id();
  const std::uint64_t fam_base = cluster.FamBase(0);

  Outcome out;
  Summary latency_us;
  std::uint64_t in_flight = 0;

  std::function<void(int)> pump = [&](int stream) {
    if (engine.Now() >= kHorizon) {
      return;
    }
    ETransDescriptor d;
    d.src.push_back(Segment{host_node, (1ULL << 28) +
                                           static_cast<std::uint64_t>(stream) * kTransferBytes,
                            kTransferBytes});
    d.dst.push_back(Segment{fam_node, fam_base +
                                          static_cast<std::uint64_t>(stream) * kTransferBytes,
                            kTransferBytes});
    d.ownership = Ownership::kInitiator;
    const Tick started = engine.Now();
    ++in_flight;
    TransferFuture f = etrans->Submit(agent, d);
    f.Then([&, stream, started](const TransferResult& r) {
      --in_flight;
      if (r.ok) {
        ++out.completed;
        latency_us.Add(ToUs(engine.Now() - started));
      } else {
        ++out.aborted;
      }
      pump(stream);
    });
  };
  for (int s = 0; s < kStreams; ++s) {
    pump(s);
  }

  engine.RunUntil(kHorizon);
  engine.RunUntil(kHorizon + kDrain);  // drain retries/backoffs to quiescence

  out.wedged = in_flight;
  // MB/s == bytes/us; measured over the submission window.
  out.goodput_mbps = static_cast<double>(out.completed * kTransferBytes) / ToUs(kHorizon);
  out.p99_us = latency_us.Empty() ? 0.0 : latency_us.P99();
  out.recovery = etrans->recovery_stats();
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("R1", "failure recovery sweep",
              "closed-loop host->FAM eTrans streams vs scripted uplink flap campaigns");

  const std::vector<Scenario> scenarios = {
      {"baseline", ""},
      {"flap_10ms", "flap fam0 start=5000 period=10000 down=300 cycles=3"},
      {"flap_5ms", "flap fam0 start=2500 period=5000 down=300 cycles=7"},
      {"flap_2ms", "# aggressive campaign\n"
                   "flap fam0 start=1000 period=2000 down=400 cycles=18\n"
                   "recover fam0 @39000"},
  };

  BenchReport report("fault_recovery");
  std::printf("%-10s %-14s %-10s %-9s %-8s %-9s %-9s %-8s %-7s\n", "scenario", "goodput MB/s",
              "p99 us", "complete", "abort", "retries", "reroutes", "recov", "wedged");

  bool any_wedged = false;
  for (const Scenario& scenario : scenarios) {
    const Outcome out = Run(scenario);
    any_wedged = any_wedged || out.wedged != 0;
    std::printf("%-10s %-14.1f %-10.1f %-9llu %-8llu %-9llu %-9llu %-8llu %-7llu\n",
                scenario.name.c_str(), out.goodput_mbps, out.p99_us,
                static_cast<unsigned long long>(out.completed),
                static_cast<unsigned long long>(out.aborted),
                static_cast<unsigned long long>(out.recovery.retries),
                static_cast<unsigned long long>(out.recovery.reroutes),
                static_cast<unsigned long long>(out.recovery.jobs_recovered),
                static_cast<unsigned long long>(out.wedged));

    report.Note(scenario.name + "/goodput_mbps", out.goodput_mbps);
    report.Note(scenario.name + "/p99_us", out.p99_us);
    report.Note(scenario.name + "/completed", out.completed);
    report.Note(scenario.name + "/aborted", out.aborted);
    report.Note(scenario.name + "/retries", out.recovery.retries);
    report.Note(scenario.name + "/reroutes", out.recovery.reroutes);
    report.Note(scenario.name + "/jobs_recovered", out.recovery.jobs_recovered);
    report.Note(scenario.name + "/jobs_aborted", out.recovery.jobs_aborted);
    report.Note(scenario.name + "/wedged", out.wedged);
  }
  report.Note("any_wedged", any_wedged ? std::uint64_t{1} : std::uint64_t{0});
  report.WriteJson();
  PrintFooter();
  return any_wedged ? 1 : 0;
}
