// N1: §3 Difference #2 — the eclectic memory-node types. Characterizes the
// four fabric-attached node flavors under single-owner and shared access so
// the unified heap's placement cost model (DP#2) has measured inputs:
//   * CPU-less NUMA expander (CXL Type 3),
//   * CC-NUMA with a hardware directory,
//   * non-CC NUMA with software coherence,
//   * COMA attraction memory.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/ccnuma.h"
#include "src/mem/coma.h"
#include "src/mem/expander.h"
#include "src/mem/noncc.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

// Measures one async op's latency in ns.
template <typename F>
double Measure(Engine& engine, F&& op) {
  const Tick t0 = engine.Now();
  bool done = false;
  op([&] { done = true; });
  engine.Run();
  return done ? ToNs(engine.Now() - t0) : -1.0;
}

BenchReport* g_report = nullptr;

void Row(const char* node, const char* op, double ns, const char* note) {
  std::printf("%-16s %-30s %10.1f   %s\n", node, op, ns, note);
  if (g_report != nullptr) {
    std::string key = std::string(node) + "/" + op;
    for (char& c : key) {
      if (c == ' ') {
        c = '_';
      }
    }
    g_report->Note(key, ns);
  }
}

// Shared fixture: two hosts + FAM directory node on one switch.
struct CoherentRig {
  Engine engine;
  FabricInterconnect fabric{&engine, 21};
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<MessageDispatcher> fea_dispatch;
  std::unique_ptr<DirectoryController> dir;
  std::unique_ptr<MessageDispatcher> host_dispatch[2];
  std::unique_ptr<CcNumaPort> port[2];

  CoherentRig() {
    auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "fam");
    AdapterConfig fea_cfg = OmegaEndpointAdapter();
    fea_cfg.request_proc_latency = FromNs(50);
    auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", dram.get());
    fabric.Connect(sw, fea, OmegaLink());
    fea_dispatch = std::make_unique<MessageDispatcher>(fea);

    CcNumaConfig cfg;
    dir = std::make_unique<DirectoryController>(&engine, cfg, fea_dispatch.get(), dram.get(),
                                                "dir");
    for (int i = 0; i < 2; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric.AddHostAdapter(fha, "h" + std::to_string(i));
      fabric.Connect(sw, adapter, OmegaLink());
      host_dispatch[i] = std::make_unique<MessageDispatcher>(adapter);
      port[i] = std::make_unique<CcNumaPort>(&engine, cfg, host_dispatch[i].get(), dir.get(),
                                             "p" + std::to_string(i));
    }
    fabric.ConfigureRouting();
  }
};

void CpuLessNuma() {
  // Plain expander access == Table 2 remote row; shared mode adds the
  // device-side serialization cost under conflicting access.
  Engine engine;
  DramDevice dram(&engine, OmegaLocalDram(), "d");
  MemoryExpander exp(&engine, &dram, "exp");
  exp.CreateSharedRegion(1 << 20);

  const double solo = Measure(engine, [&](auto done) { exp.HandleRead(0, 64, done); });
  Row("CPU-less NUMA", "device read (no fabric)", solo, "plus ~1513 ns fabric path = Table 2");

  // Conflicting same-line writes from two hosts: second serializes.
  Tick first = 0;
  Tick second = 0;
  exp.HandleWrite(64, 64, [&] { first = engine.Now(); });
  exp.HandleWrite(64, 64, [&] { second = engine.Now(); });
  engine.Run();
  Row("CPU-less NUMA", "shared-line conflict penalty", ToNs(second - first),
      "FEA serializes; no processor on the node");
}

void CcNuma() {
  {
    CoherentRig rig;
    const double miss =
        Measure(rig.engine, [&](auto done) { rig.port[0]->Read(0x1000, done); });
    Row("CC-NUMA", "read miss (uncached block)", miss, "GetS -> home -> Data");
    const double hit =
        Measure(rig.engine, [&](auto done) { rig.port[0]->Read(0x1000, done); });
    Row("CC-NUMA", "read hit (S in port cache)", hit, "hardware coherence is free on hits");
  }
  {
    CoherentRig rig;
    rig.port[0]->Read(0x2000, nullptr);
    rig.port[1]->Read(0x2000, nullptr);
    rig.engine.Run();
    const double upgrade =
        Measure(rig.engine, [&](auto done) { rig.port[0]->Write(0x2000, done); });
    Row("CC-NUMA", "S->M upgrade (1 sharer inval)", upgrade, "GetM + Inv + InvAck + DataM");
  }
  {
    CoherentRig rig;
    rig.port[0]->Write(0x3000, nullptr);
    rig.engine.Run();
    Summary pingpong;
    for (int round = 0; round < 6; ++round) {
      pingpong.Add(Measure(rig.engine, [&](auto done) {
        rig.port[round % 2]->Write(0x3000, done);
      }));
    }
    Row("CC-NUMA", "write ping-pong (recall path)", pingpong.Mean(),
        "ownership bounces host<->host via home");
  }
}

void NonCc() {
  Engine engine;
  FabricInterconnect fabric(&engine, 31);
  auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
  DramDevice dram(&engine, OmegaLocalDram(), "fam");
  auto* fea = fabric.AddEndpointAdapter(OmegaEndpointAdapter(), "fea", &dram);
  fabric.Connect(sw, fea, OmegaLink());
  auto* fha = fabric.AddHostAdapter(OmegaHostAdapter(), "h0");
  fabric.Connect(sw, fha, OmegaLink());
  SharedStateOracle oracle;
  NonCcPort port(&engine, NonCcConfig{}, fha, fea->id(), &oracle, "p0");
  fabric.ConfigureRouting();

  const double miss = Measure(engine, [&](auto done) {
    port.Read(0, [done](bool) { done(); });
  });
  Row("non-CC NUMA", "read miss (fetch)", miss, "same path as expander; software manages");
  const double hit = Measure(engine, [&](auto done) {
    port.Read(0, [done](bool) { done(); });
  });
  Row("non-CC NUMA", "read hit (software cache)", hit, "cheap, but may be stale");
  const double write = Measure(engine, [&](auto done) { port.Write(0, done); });
  Row("non-CC NUMA", "write (buffered local)", write, "remote unaware until flush");
  const double flush = Measure(engine, [&](auto done) { port.FlushBlock(0, done); });
  Row("non-CC NUMA", "explicit flush", flush, "software pays coherence on demand");
}

void Coma() {
  Engine engine;
  ComaConfig cfg;
  cfg.num_nodes = 8;
  cfg.blocks_per_node = 512;
  ComaSystem coma(&engine, cfg);
  coma.SeedBlock(1, 0x0);    // sibling of node 0
  coma.SeedBlock(7, 0x40);   // farthest subtree from node 0

  const double near_miss =
      Measure(engine, [&](auto done) { coma.Read(0, 0x0, done); });
  Row("COMA", "read miss, sibling holder", near_miss, "replicates; 2 directory hops");
  const double hit = Measure(engine, [&](auto done) { coma.Read(0, 0x0, done); });
  Row("COMA", "attraction-memory hit", hit, "block migrated toward its user");
  const double far_miss =
      Measure(engine, [&](auto done) { coma.Read(0, 0x40, done); });
  Row("COMA", "read miss, far holder", far_miss, "6 directory hops up+down the tree");
  const double write_mig =
      Measure(engine, [&](auto done) { coma.Write(2, 0x0, done); });
  Row("COMA", "write (migrate + invalidate)", write_mig,
      "kills replicas; block moves to writer");
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("N1", "§3 Difference #2 (memory node types)",
              "measured access characteristics of the four fabric memory-node flavors");
  std::printf("%-16s %-30s %10s   %s\n", "node type", "operation", "ns", "notes");
  std::printf("%s\n", std::string(100, '-').c_str());
  BenchReport report("memory_nodes");
  g_report = &report;
  CpuLessNuma();
  CcNuma();
  NonCc();
  Coma();
  g_report = nullptr;
  report.WriteJson();
  std::printf("\n(these are the placement-cost inputs DP#2's heap uses: hardware coherence "
              "buys transparent sharing at recall/invalidate cost; software coherence is "
              "cheap but unsafe; COMA chases locality automatically)\n");
  PrintFooter();
  return 0;
}
