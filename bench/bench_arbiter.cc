// P4: DP#4 ablation — the central fabric arbiter. Three hosts run bulk
// eTrans flows into one FAM while a fourth issues latency-sensitive 64B
// reads. With uncoordinated (unthrottled) movement the bulk flows contend
// freely; with arbiter leases each flow is paced to its max-min share.
// Metrics: per-flow throughput, Jain fairness, probe p99.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

constexpr Tick kHorizon = FromMs(10.0);
constexpr std::uint64_t kChunk = 16ULL << 20;  // per bulk job

struct Outcome {
  std::vector<double> flow_mbps;
  double jain = 0.0;
  double probe_p99_ns = 0.0;
  double probe_mean_ns = 0.0;
};

Outcome Run(bool arbiter_on, BenchReport* report) {
  // Two switches: hosts 0 (probe) and 2 sit next to the FAM on switch 0;
  // hosts 1 and 3 reach it across the inter-switch trunk. Per-flit fairness
  // at switch 0 gives the near host half the output while the two far flows
  // split the trunk's share — the classic parking-lot unfairness a central
  // allocator is meant to repair.
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.num_fams = 1;
  cfg.num_faas = 0;
  cfg.num_switches = 2;
  Cluster cluster(cfg);
  RuntimeOptions opts;
  opts.fam_capacity_mbps = 4200.0;  // the arbiter manages FAM ingress below saturation
  UniFabricRuntime runtime(&cluster, opts);

  for (int h = 1; h < 4; ++h) {
    auto submit = std::make_shared<std::function<void()>>();
    *submit = [&runtime, &cluster, h, submit, arbiter_on] {
      ETransDescriptor d;
      d.src.push_back(Segment{cluster.host(h)->id(), 0, kChunk});
      d.dst.push_back(
          Segment{cluster.fam(0)->id(), static_cast<std::uint64_t>(h) << 26, kChunk});
      d.attributes.throttled = arbiter_on;
      d.attributes.request_mbps = 4200.0;
      d.attributes.pipeline_depth = 8;
      d.ownership = Ownership::kInitiator;
      TransferFuture f = runtime.etrans()->Submit(runtime.host_agent(h), d);
      f.Then([submit](const TransferResult&) { (*submit)(); });
    };
    (*submit)();
  }

  // Probe: host 0 dependent 64B reads against FAM0.
  Summary probe;
  auto addr = std::make_shared<std::uint64_t>(cluster.FamBase(0));
  auto loop = std::make_shared<std::function<void()>>();
  MemoryHierarchy* core = cluster.host(0)->core(0);
  *loop = [&cluster, core, addr, &probe, loop] {
    *addr = cluster.FamBase(0) + (*addr + 4160) % (16 << 20);
    const Tick t0 = cluster.engine().Now();
    core->Access(*addr, false, [&cluster, &probe, t0, loop] {
      probe.Add(ToNs(cluster.engine().Now() - t0));
      cluster.engine().Schedule(FromNs(500), *loop);
    });
  };
  (*loop)();

  cluster.engine().RunUntil(kHorizon);

  Outcome out;
  for (int h = 1; h < 4; ++h) {
    out.flow_mbps.push_back(static_cast<double>(runtime.host_agent(h)->stats().bytes_moved) /
                            ToSec(kHorizon) / 1e6);
  }
  report->Capture(arbiter_on ? "arbiter" : "uncoordinated", cluster.engine().metrics());
  out.jain = JainFairnessIndex(out.flow_mbps);
  out.probe_p99_ns = probe.P99();
  out.probe_mean_ns = probe.Mean();
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("P4", "DP#4 ablation (central arbiter)",
              "3 bulk flows + 1 latency probe into one FAM: uncoordinated vs arbiter leases");
  std::printf("%-24s %-30s %-10s %-14s %-14s\n", "mode", "flow throughput (MB/s)", "Jain",
              "probe mean", "probe p99 (ns)");
  BenchReport report("arbiter");
  for (const bool on : {false, true}) {
    const Outcome o = Run(on, &report);
    const std::string mode = on ? "arbiter" : "uncoordinated";
    std::printf("%-24s %6.0f / %6.0f / %6.0f        %-10.3f %-14.1f %-14.1f\n",
                on ? "arbiter leases" : "uncoordinated", o.flow_mbps[0], o.flow_mbps[1],
                o.flow_mbps[2], o.jain, o.probe_mean_ns, o.probe_p99_ns);
    for (std::size_t i = 0; i < o.flow_mbps.size(); ++i) {
      report.Note(mode + "/flow" + std::to_string(i) + "_mbps", o.flow_mbps[i]);
    }
    report.Note(mode + "/jain", o.jain);
    report.Note(mode + "/probe_mean_ns", o.probe_mean_ns);
    report.Note(mode + "/probe_p99_ns", o.probe_p99_ns);
  }
  report.WriteJson();
  std::printf("(expected shape: leases equalize flow shares — Jain -> 1 — and cap aggregate "
              "ingress below saturation, tightening the probe tail)\n");
  PrintFooter();
  return 0;
}
