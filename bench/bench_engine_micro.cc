// Microbenchmarks (google-benchmark) for the simulator's own hot paths:
// these bound how large a composable-infrastructure simulation the harness
// can sustain, independent of any paper artifact.
//
// The report this binary writes is fully deterministic: wall-clock-derived
// numbers (calibrated iteration counts, elapsed time) go into the report's
// non-golden "perf" section, the benchmark-local engines run with auditing
// off (their event streams depend on iteration calibration), and only the
// fixed self-check workload below contributes to the golden "results" /
// "metrics" sections and the [unifab-audit] digest.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/mem/cache.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

// Calibrated iteration counts per benchmark, keyed by name. google-benchmark
// re-invokes each BM function while calibrating, so entries are overwritten
// and the final value is the measured run's count.
std::vector<std::pair<std::string, std::uint64_t>>& PerfIterations() {
  static std::vector<std::pair<std::string, std::uint64_t>> entries;
  return entries;
}

void NoteIterations(const std::string& name, const benchmark::State& state) {
  const auto iterations = static_cast<std::uint64_t>(state.iterations());
  for (auto& entry : PerfIterations()) {
    if (entry.first == name) {
      entry.second = iterations;
      return;
    }
  }
  PerfIterations().emplace_back(name, iterations);
}

void BM_EngineScheduleFire(benchmark::State& state) {
  Engine engine;
  // Auditing stays off even under UNIFAB_AUDIT=1: the number of events a
  // benchmark-local engine fires depends on wall-clock calibration, so its
  // digest would differ run to run and poison the bench's audit output.
  engine.SetAuditCadence(0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    engine.Schedule(1, [&sink] { ++sink; });
    engine.Step(1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  NoteIterations("engine_schedule_fire", state);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineDeepQueue(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    engine.SetAuditCadence(0);  // calibration-dependent stream: keep unaudited
    std::uint64_t sink = 0;
    for (int i = 0; i < depth; ++i) {
      engine.Schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
    }
    state.ResumeTiming();
    engine.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * depth);
  NoteIterations("engine_deep_queue/" + std::to_string(depth), state);
}
BENCHMARK(BM_EngineDeepQueue)->Arg(1024)->Arg(16384);

void BM_CacheAccessHit(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{32 * 1024, 64, 8});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 64) {
    cache.Insert(a, false);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, false));
    addr = (addr + 64) % (32 * 1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  NoteIterations("cache_access_hit", state);
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{32 * 1024, 64, 8});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert(addr, (addr & 128) != 0));
    addr += 64;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  NoteIterations("cache_insert_evict", state);
}
BENCHMARK(BM_CacheInsertEvict);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  NoteIterations("rng_next", state);
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(42, 0.99, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  NoteIterations("zipf_next/" + std::to_string(state.range(0)), state);
}
BENCHMARK(BM_ZipfNext)->Arg(1024)->Arg(65536);

void BM_SummaryPercentile(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    Summary s;
    for (int i = 0; i < 4096; ++i) {
      s.Add(rng.NextDouble());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.P99());
  }
  NoteIterations("summary_percentile", state);
}
BENCHMARK(BM_SummaryPercentile);

// Deterministic self-check workload captured into the bench JSON: wall-time
// numbers from the microbenchmarks above vary run to run, but this fixed
// event mix (and the registry snapshot it produces) must not.
void CaptureDeterministicWorkload(BenchReport* report) {
  Engine engine;
  TraceRecorder trace(/*capacity=*/1024);
  engine.SetTraceSink(&trace);
  Rng rng(99);
  std::uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    engine.Schedule(static_cast<Tick>(rng.Next() % 1000), [&fired] { ++fired; });
  }
  engine.Run();
  report->Note("selfcheck/events_fired", fired);
  report->Note("selfcheck/final_now_ns", ToNs(engine.Now()));
  report->Note("selfcheck/trace_scheduled", trace.scheduled());
  report->Note("selfcheck/trace_fired", trace.fired());
  report->Capture("selfcheck", engine.metrics());
}

}  // namespace
}  // namespace unifab

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  benchmark::Shutdown();

  unifab::BenchReport report("engine_micro");
  unifab::CaptureDeterministicWorkload(&report);
  for (const auto& entry : unifab::PerfIterations()) {
    report.Perf("iterations/" + entry.first, entry.second);
  }
  report.Perf("benchmark_wall_seconds", elapsed);
  report.WriteJson();
  return 0;
}
