// Microbenchmarks (google-benchmark) for the simulator's own hot paths:
// these bound how large a composable-infrastructure simulation the harness
// can sustain, independent of any paper artifact.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mem/cache.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  Engine engine;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    engine.Schedule(1, [&sink] { ++sink; });
    engine.Step(1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineDeepQueue(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    std::uint64_t sink = 0;
    for (int i = 0; i < depth; ++i) {
      engine.Schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
    }
    state.ResumeTiming();
    engine.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EngineDeepQueue)->Arg(1024)->Arg(16384);

void BM_CacheAccessHit(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{32 * 1024, 64, 8});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 64) {
    cache.Insert(a, false);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, false));
    addr = (addr + 64) % (32 * 1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{32 * 1024, 64, 8});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert(addr, (addr & 128) != 0));
    addr += 64;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheInsertEvict);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(42, 0.99, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfNext)->Arg(1024)->Arg(65536);

void BM_SummaryPercentile(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    Summary s;
    for (int i = 0; i < 4096; ++i) {
      s.Add(rng.NextDouble());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.P99());
  }
}
BENCHMARK(BM_SummaryPercentile);

// Deterministic self-check workload captured into the bench JSON: wall-time
// numbers from the microbenchmarks above vary run to run, but this fixed
// event mix (and the registry snapshot it produces) must not.
void CaptureDeterministicWorkload(BenchReport* report) {
  Engine engine;
  TraceRecorder trace(/*capacity=*/1024);
  engine.SetTraceSink(&trace);
  Rng rng(99);
  std::uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    engine.Schedule(static_cast<Tick>(rng.Next() % 1000), [&fired] { ++fired; });
  }
  engine.Run();
  report->Note("selfcheck/events_fired", fired);
  report->Note("selfcheck/final_now_ns", ToNs(engine.Now()));
  report->Note("selfcheck/trace_scheduled", trace.scheduled());
  report->Note("selfcheck/trace_fired", trace.fired());
  report->Capture("selfcheck", engine.metrics());
}

}  // namespace
}  // namespace unifab

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  unifab::BenchReport report("engine_micro");
  unifab::CaptureDeterministicWorkload(&report);
  report.WriteJson();
  return 0;
}
