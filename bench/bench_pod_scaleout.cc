// E-POD: hierarchical pod scale-out over the CXL-Ethernet hybrid fabric.
// Sweeps cross-pod AllReduce across pod count (2/4/8) and algorithm (flat
// ring vs pod-aware hierarchical vs auto), mixes a heap workload with a
// cross-pod collective on a 4-pod cluster, and drives a 16-pod cluster
// with > 1000 simulated components. Gates: the hierarchical schedule must
// beat the flat ring once the group spans >= 4 pods, auto must pick the
// hierarchy there, and every leg must finish with a clean invariant sweep.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/collect_algo.h"
#include "src/core/runtime.h"
#include "src/topo/cluster.h"
#include "src/topo/pod.h"

namespace unifab {
namespace {

struct Outcome {
  bool ok = false;
  double latency_us = 0.0;
  std::uint64_t bytes = 0;
  CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto;
  std::uint64_t audit_violations = 0;
};

// One cross-pod AllReduce on a fresh pod cluster: `faas_per_pod` members
// from every pod, everything at t=0, so the completion tick is the
// collective's latency.
Outcome RunScaleOut(int pods, int faas_per_pod, std::uint64_t bytes,
                    CollectiveAlgorithm algo) {
  PodConfig pod;
  pod.num_hosts = 2;
  pod.num_fams = 1;
  pod.num_faas = faas_per_pod;
  Cluster cluster(DFabricPodCluster(pods, pod));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});

  CollectiveGroup group;
  for (int p = 0; p < pods; ++p) {
    for (int a : cluster.pod(p).faas) {
      group.members.push_back(CollectiveMember{cluster.faa(a)->id(), 1ULL << 20});
    }
  }

  CollectiveFuture f = runtime.collect()->AllReduce(group, bytes, algo);
  cluster.engine().Run();

  Outcome out;
  if (!f.Ready()) {
    return out;  // wedged: ok stays false
  }
  const CollectiveResult& r = f.Value();
  out.ok = r.ok && r.status == TransferStatus::kOk;
  out.latency_us = ToUs(r.completed_at);
  out.bytes = r.bytes;
  out.algo = r.algorithm;
  out.audit_violations = cluster.engine().audit().Sweep().size();
  out.ok = out.ok && out.audit_violations == 0;
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("E-POD", "pod scale-out",
              "cross-pod AllReduce over the CXL-Ethernet hybrid: flat ring vs "
              "hierarchical vs auto across 2/4/8 pods, heap+collective mix, and a "
              "16-pod >1000-component cluster");

  BenchReport report("pod_scaleout");
  bool failed = false;

  constexpr std::uint64_t kBytes = 16 * 1024;
  constexpr int kFaasPerPod = 4;

  // --- Scale-out sweep: pod count x algorithm. ---------------------------
  std::printf("%-24s %-12s %-12s %-10s %-8s\n", "scenario", "algo", "latency us", "MB moved",
              "ok");
  const std::vector<std::pair<const char*, CollectiveAlgorithm>> algos = {
      {"ring", CollectiveAlgorithm::kRing},
      {"hier", CollectiveAlgorithm::kHierarchical},
      {"auto", CollectiveAlgorithm::kAuto},
  };
  for (const int pods : {2, 4, 8}) {
    double ring_us = 0.0;
    double hier_us = 0.0;
    CollectiveAlgorithm auto_pick = CollectiveAlgorithm::kAuto;
    for (const auto& [aname, algo] : algos) {
      const Outcome out = RunScaleOut(pods, kFaasPerPod, kBytes, algo);
      failed = failed || !out.ok;
      char label[48];
      std::snprintf(label, sizeof(label), "pods%d_n%d_%s", pods, pods * kFaasPerPod, aname);
      std::printf("%-24s %-12s %-12.1f %-10.2f %-8s\n", label,
                  CollectiveAlgorithmName(out.algo), out.latency_us,
                  static_cast<double>(out.bytes) / (1024.0 * 1024.0), out.ok ? "yes" : "NO");
      report.Note(std::string(label) + "/latency_us", out.latency_us);
      report.Note(std::string(label) + "/bytes", out.bytes);
      report.Note(std::string(label) + "/algo", CollectiveAlgorithmName(out.algo));
      if (algo == CollectiveAlgorithm::kRing) {
        ring_us = out.latency_us;
      } else if (algo == CollectiveAlgorithm::kHierarchical) {
        hier_us = out.latency_us;
      } else {
        auto_pick = out.algo;
      }
    }
    // The scale-out premise: once the group spans >= 4 pods, confining the
    // bulk of the traffic to the CXL tier beats ringing every slice across
    // the Ethernet bridges — in the simulated fabric, not just the model.
    if (pods >= 4) {
      if (!(hier_us < ring_us)) {
        std::fprintf(stderr,
                     "FAIL: hierarchical (%.1f us) not faster than flat ring (%.1f us) "
                     "for %d pods\n",
                     hier_us, ring_us, pods);
        failed = true;
      }
      if (auto_pick != CollectiveAlgorithm::kHierarchical) {
        std::fprintf(stderr, "FAIL: auto picked %s (want hierarchical) for %d pods\n",
                     CollectiveAlgorithmName(auto_pick), pods);
        failed = true;
      }
    }
  }

  // --- Mixed leg: heap traffic concurrent with a cross-pod AllReduce. ----
  {
    PodConfig pod;
    pod.num_hosts = 2;
    pod.num_fams = 2;
    pod.num_faas = 4;
    Cluster cluster(DFabricPodCluster(4, pod));
    UniFabricRuntime runtime(&cluster, RuntimeOptions{});

    int heap_done = 0;
    int heap_issued = 0;
    for (int p = 0; p < 4; ++p) {
      UnifiedHeap* heap = runtime.heap(cluster.pod(p).hosts[0]);
      std::vector<ObjectId> objs;
      for (int i = 0; i < 8; ++i) {
        const ObjectId id = heap->Allocate(4096);
        if (id != kInvalidObject) {
          objs.push_back(id);
        }
      }
      for (int i = 0; i < 32; ++i) {
        ++heap_issued;
        if (i % 3 == 0) {
          heap->Write(objs[static_cast<std::size_t>(i) % objs.size()], [&] { ++heap_done; });
        } else {
          heap->Read(objs[static_cast<std::size_t>(i) % objs.size()], [&] { ++heap_done; });
        }
      }
    }

    CollectiveGroup group;
    for (int p = 0; p < 4; ++p) {
      for (int a : cluster.pod(p).faas) {
        group.members.push_back(CollectiveMember{cluster.faa(a)->id(), 1ULL << 20});
      }
    }
    CollectiveFuture f = runtime.collect()->AllReduce(group, kBytes);
    cluster.engine().Run();

    const bool coll_ok = f.Ready() && f.Value().ok;
    const std::uint64_t violations = cluster.engine().audit().Sweep().size();
    const bool ok = coll_ok && heap_done == heap_issued && violations == 0;
    failed = failed || !ok;
    std::printf("\n%-24s %-12s %-12s %-8s\n", "mixed (4 pods)", "heap ops", "latency us", "ok");
    std::printf("%-24s %d/%d      %-12.1f %-8s\n", "heap+allreduce", heap_done, heap_issued,
                coll_ok ? ToUs(f.Value().completed_at) : 0.0, ok ? "yes" : "NO");
    report.Note("mixed/heap_ops", static_cast<std::uint64_t>(heap_done));
    report.Note("mixed/latency_us", coll_ok ? ToUs(f.Value().completed_at) : 0.0);
    report.Note("mixed/ok", ok ? std::uint64_t{1} : std::uint64_t{0});
  }

  // --- Scale leg: 16 pods, > 1000 simulated components. ------------------
  {
    PodConfig pod;
    pod.num_hosts = 4;
    pod.num_fams = 30;
    pod.num_faas = 30;
    Cluster cluster(DFabricPodCluster(16, pod));
    UniFabricRuntime runtime(&cluster, RuntimeOptions{});
    const int components =
        cluster.num_hosts() + cluster.num_fams() + cluster.num_faas();

    CollectiveGroup group;
    for (int p = 0; p < 16; ++p) {
      for (int i = 0; i < 2; ++i) {
        group.members.push_back(
            CollectiveMember{cluster.faa(cluster.pod(p).faas[i])->id(), 1ULL << 20});
      }
    }
    CollectiveFuture f = runtime.collect()->AllReduce(group, kBytes);
    cluster.engine().Run();

    const bool coll_ok = f.Ready() && f.Value().ok;
    const std::uint64_t violations = cluster.engine().audit().Sweep().size();
    const bool ok = coll_ok && components > 1000 && violations == 0;
    failed = failed || !ok;
    std::printf("\n%-24s %-12s %-12s %-12s %-8s\n", "scale (16 pods)", "components", "algo",
                "latency us", "ok");
    std::printf("%-24s %-12d %-12s %-12.1f %-8s\n", "allreduce_n32", components,
                coll_ok ? CollectiveAlgorithmName(f.Value().algorithm) : "-",
                coll_ok ? ToUs(f.Value().completed_at) : 0.0, ok ? "yes" : "NO");
    report.Note("scale16/components", static_cast<std::uint64_t>(components));
    report.Note("scale16/latency_us", coll_ok ? ToUs(f.Value().completed_at) : 0.0);
    report.Note("scale16/algo",
                coll_ok ? CollectiveAlgorithmName(f.Value().algorithm) : "-");
    report.Note("scale16/ok", ok ? std::uint64_t{1} : std::uint64_t{0});
  }

  report.Note("failed", failed ? std::uint64_t{1} : std::uint64_t{0});
  report.WriteJson();
  PrintFooter();
  return failed ? 1 : 0;
}
