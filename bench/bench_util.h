// Shared output helpers for the reproduction benches. Each bench binary
// prints the paper artifact it regenerates (table rows / figure series)
// with paper-reported values alongside simulated ones where applicable.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace unifab {

inline void PrintHeader(const std::string& experiment, const std::string& artifact,
                        const std::string& description) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace unifab

#endif  // BENCH_BENCH_UTIL_H_
