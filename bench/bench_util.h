// Shared output helpers for the reproduction benches. Each bench binary
// prints the paper artifact it regenerates (table rows / figure series)
// with paper-reported values alongside simulated ones where applicable,
// and additionally writes a machine-readable BENCH_<name>.json blob via
// BenchReport so sweeps and CI can diff results without screen-scraping.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/metrics.h"

namespace unifab {

inline void PrintHeader(const std::string& experiment, const std::string& artifact,
                        const std::string& description) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

// Accumulates a bench run's headline numbers plus full MetricRegistry
// snapshots and writes them as one JSON object to BENCH_<name>.json in the
// working directory. Keys keep insertion order, so two runs of the same
// bench produce byte-identical key sequences (values differ only if the
// simulation did).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Note(const std::string& key, double value) { notes_.emplace_back(key, Num(value)); }
  void Note(const std::string& key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    notes_.emplace_back(key, buf);
  }
  void Note(const std::string& key, int value) {
    Note(key, static_cast<std::uint64_t>(value < 0 ? 0 : value));
  }
  void Note(const std::string& key, const std::string& value) {
    notes_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Note(const std::string& key, const char* value) { Note(key, std::string(value)); }

  // Folds a full registry snapshot in under `label` (e.g. one per scenario).
  void Capture(const std::string& label, const MetricRegistry& registry) {
    captures_.emplace_back(label, registry.SnapshotJson());
  }

  // Wall-clock-derived numbers (iteration counts, events/sec, elapsed
  // seconds) go here, NOT in Note(): the "perf" section is stripped by
  // scripts/check.sh before golden diffs, so it may vary run to run while
  // "results" and "metrics" stay bit-exact. Values are flat numbers only —
  // the stripper relies on the section containing no nested braces.
  void Perf(const std::string& key, double value) { perf_.emplace_back(key, Num(value)); }
  void Perf(const std::string& key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    perf_.emplace_back(key, buf);
  }

  // Writes BENCH_<name>.json; returns the path (empty on I/O failure).
  std::string WriteJson() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot open %s\n", path.c_str());
      return "";
    }
    std::fputs(ToJson().c_str(), f);
    std::fclose(f);
    std::printf("[bench json] %s\n", path.c_str());
    return path;
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + Escape(name_) + "\",\"results\":{";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += "\"" + Escape(notes_[i].first) + "\":" + notes_[i].second;
    }
    out += "},\"metrics\":{";
    for (std::size_t i = 0; i < captures_.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += "\"" + Escape(captures_[i].first) + "\":" + captures_[i].second;
    }
    out += '}';
    if (!perf_.empty()) {
      out += ",\"perf\":{";
      for (std::size_t i = 0; i < perf_.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        out += "\"" + Escape(perf_[i].first) + "\":" + perf_[i].second;
      }
      out += '}';
    }
    out += "}\n";
    return out;
  }

 private:
  static std::string Num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    // JSON has no inf/nan literals; an absent-sample placeholder is null.
    std::string s(buf);
    if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
      return "null";
    }
    return s;
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> notes_;     // key -> rendered value
  std::vector<std::pair<std::string, std::string>> captures_;  // label -> snapshot JSON
  std::vector<std::pair<std::string, std::string>> perf_;      // non-golden wall-clock numbers
};

}  // namespace unifab

#endif  // BENCH_BENCH_UTIL_H_
