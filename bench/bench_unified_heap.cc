// P2: DP#2 ablation — the host-assisted, node-type-conscious unified heap.
// A zipf-skewed object workload runs against 16 MiB of 256 B objects that
// start on a fabric-attached memory expander, under four placements:
//   a) unified heap with temperature-driven migration (FCC);
//   b) static placement (objects stay on the expander; the host caches
//      still help — this is "CXL memory with a type-unconscious allocator");
//   c) all-local oracle (everything fits in host DRAM — upper bound);
//   d) AIFM-style RDMA far memory (communication-fabric baseline: whole
//      objects swap over a NIC into a local cache).

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/policies.h"
#include "src/baseline/rdma.h"
#include "src/core/runtime.h"
#include "src/sim/random.h"

namespace unifab {
namespace {

constexpr Tick kHorizon = FromMs(100.0);

// One workload regime: object geometry, skew, and the fast-tier budget.
struct Regime {
  const char* name;
  int num_objects;
  std::uint32_t object_bytes;
  std::uint64_t local_tier_bytes;
  double zipf_skew;
  // Promotion threshold the runtime's profiler uses for this workload: mild
  // skew needs a high bar (a single touch is noise); heavy skew rewards an
  // eager policy. Choosing this per workload/node is DP#2's whole argument.
  double promote_threshold;
};

constexpr Regime kRegimes[] = {
    {"tiny objects, mild skew: 256K x 64B, zipf 0.5, 2 MiB fast tier", 262144, 64,
     2ULL << 20, 0.5, 1.2},
    {"small objects: 32K x 256B, zipf 0.9, 2 MiB fast tier", 32768, 256, 2ULL << 20, 0.9,
     0.5},
    {"large objects: 16K x 1KiB, zipf 0.9, 4 MiB fast tier", 16384, 1024, 4ULL << 20, 0.9,
     0.5},
};

struct Outcome {
  double mean_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t promotions = 0;
  std::uint64_t local_objects = 0;
};

Outcome RunHeapMode(const Regime& regime, bool migration, bool all_local) {
  ClusterConfig ccfg;
  ccfg.num_hosts = 1;
  ccfg.num_fams = 1;
  ccfg.num_faas = 0;
  // A leaner L2 keeps the CPU caches from swallowing the whole hot set; the
  // interesting regime is working set >> cache.
  ccfg.host.hierarchy.l2 = CacheConfig{256 * 1024, 64, 8};
  Cluster cluster(ccfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = all_local ? (64ULL << 20) : regime.local_tier_bytes;
  opts.heap.migration_enabled = migration;
  opts.heap.epoch_length = FromMs(1.0);
  opts.heap.migration_budget_bytes = 2 << 20;
  opts.heap.promote_threshold = regime.promote_threshold;
  opts.heap.demote_threshold = 0.05;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);
  if (!migration) {
    heap->SetPolicy(std::make_unique<StaticPlacementPolicy>());
  }

  std::vector<ObjectId> objects;
  objects.reserve(static_cast<std::size_t>(regime.num_objects));
  for (int i = 0; i < regime.num_objects; ++i) {
    const ObjectId id = heap->Allocate(regime.object_bytes, all_local ? 0 : 1);
    objects.push_back(id);
  }

  ZipfGenerator zipf(/*seed=*/7, regime.zipf_skew, static_cast<std::size_t>(regime.num_objects));
  Summary lat;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&cluster, heap, &objects, &zipf, &lat, loop] {
    const ObjectId id = objects[zipf.Next()];
    const Tick t0 = cluster.engine().Now();
    heap->Read(id, [&cluster, &lat, t0, loop] {
      lat.Add(ToNs(cluster.engine().Now() - t0));
      (*loop)();
    });
  };
  for (int i = 0; i < 4; ++i) {  // four application threads
    (*loop)();
  }
  cluster.engine().RunUntil(kHorizon);

  Outcome out;
  out.mean_ns = lat.Mean();
  out.p99_ns = lat.P99();
  out.ops = lat.Count();
  out.promotions = heap->stats().promotions;
  for (const ObjectId id : objects) {
    if (heap->TierOf(id) == 0) {
      ++out.local_objects;
    }
  }
  return out;
}

Outcome RunRdmaMode(const Regime& regime) {
  Engine engine;
  RdmaHeapConfig cfg;
  cfg.local_cache_bytes = regime.local_tier_bytes;
  cfg.local_hit_latency = FromNs(60.0);  // generous: local hits are cache-warm
  RdmaObjectHeap heap(&engine, cfg);

  std::vector<std::uint64_t> objects;
  objects.reserve(static_cast<std::size_t>(regime.num_objects));
  for (int i = 0; i < regime.num_objects; ++i) {
    objects.push_back(heap.Allocate(regime.object_bytes));
  }

  ZipfGenerator zipf(/*seed=*/7, regime.zipf_skew, static_cast<std::size_t>(regime.num_objects));
  Summary lat;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&engine, &heap, &objects, &zipf, &lat, loop] {
    const std::uint64_t id = objects[zipf.Next()];
    const Tick t0 = engine.Now();
    heap.Read(id, [&engine, &lat, t0, loop] {
      lat.Add(ToNs(engine.Now() - t0));
      (*loop)();
    });
  };
  for (int i = 0; i < 4; ++i) {
    (*loop)();
  }
  engine.RunUntil(kHorizon);

  Outcome out;
  out.mean_ns = lat.Mean();
  out.p99_ns = lat.P99();
  out.ops = lat.Count();
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("P2", "DP#2 ablation (unified heap)",
              "skewed object reads, 4 app threads, 100 ms horizon, three object regimes");

  BenchReport report("unified_heap");
  for (const Regime& regime : kRegimes) {
    std::printf("\n--- %s ---\n", regime.name);
    std::printf("%-30s %-12s %-12s %-10s %-12s %-12s\n", "placement", "mean (ns)", "p99 (ns)",
                "ops (k)", "promotions", "hot-tier objs");

    const Outcome fcc = RunHeapMode(regime, /*migration=*/true, /*all_local=*/false);
    const Outcome stat = RunHeapMode(regime, false, false);
    const Outcome local = RunHeapMode(regime, false, true);
    const Outcome rdma = RunRdmaMode(regime);

    auto row = [](const char* name, const Outcome& o) {
      std::printf("%-30s %-12.1f %-12.1f %-10.1f %-12llu %-12llu\n", name, o.mean_ns, o.p99_ns,
                  static_cast<double>(o.ops) / 1000.0,
                  static_cast<unsigned long long>(o.promotions),
                  static_cast<unsigned long long>(o.local_objects));
    };
    row("unified heap + migration", fcc);
    row("static on expander", stat);
    row("all-local oracle", local);
    row("RDMA far memory (AIFM-like)", rdma);

    const struct { const char* key; const Outcome* o; } rows[] = {
        {"migration", &fcc}, {"static", &stat}, {"all_local", &local}, {"rdma", &rdma}};
    for (const auto& r : rows) {
      std::string key = std::string(regime.name) + "/" + r.key;
      for (char& c : key) {
        if (c == ' ') {
          c = '_';
        }
      }
      report.Note(key + "/mean_ns", r.o->mean_ns);
      report.Note(key + "/p99_ns", r.o->p99_ns);
      report.Note(key + "/ops", r.o->ops);
    }

    std::printf("migration vs static: %.2fx mean latency, %.2fx throughput; vs RDMA far "
                "memory: %.2fx mean latency\n",
                stat.mean_ns / fcc.mean_ns,
                static_cast<double>(fcc.ops) / static_cast<double>(stat.ops),
                rdma.mean_ns / fcc.mean_ns);
  }
  std::printf("\n(expected shape: migration closes much of the static-vs-local gap under "
              "skew; cacheline load/store wins on small objects while whole-object RDMA "
              "swap amortizes better on large hot objects — the type-conscious heap is "
              "what lets the runtime pick placement per object)\n");
  report.WriteJson();
  PrintFooter();
  return 0;
}
