// D3a: §3 Difference #3 — routable-PCIe interference on a FabreX-like
// fabric. The paper reports that (a) concurrent 64B PCIe writes to a
// disaggregated device add ~600 ns one-way latency versus holding the card
// in the host, and (b) interleaving the 64B stream with 16KB writes
// degrades its average latency drastically.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

// FabreX-flavoured components: PCIe Gen4 x4 per port (8 GB/s), sub-100ns
// switch, lean adapters (the device is an FPGA on the fabric, not a DDR
// DIMM behind a heavy FEA).
LinkConfig FabrexLink() {
  LinkConfig cfg;
  cfg.gigatransfers_per_sec = 16.0;  // Gen4
  cfg.lanes = 4;                     // 8 GB/s -> 68B flit in 8.5 ns
  cfg.propagation = FromNs(30.0);
  cfg.credits_per_vc = 16;
  cfg.credit_return_latency = FromNs(30.0);
  cfg.tx_queue_depth = 512;
  return cfg;
}

AdapterConfig LeanAdapter() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(100.0);
  cfg.response_proc_latency = FromNs(100.0);
  cfg.max_outstanding = 64;
  return cfg;
}

DramConfig FpgaScratch() {
  DramConfig cfg;
  cfg.capacity_bytes = 1ULL << 30;
  cfg.num_banks = 8;
  cfg.access_latency = FromNs(50.0);
  cfg.bandwidth_gbps = 16.0;
  return cfg;
}

struct Testbed {
  Engine engine;
  FabricInterconnect fabric{&engine, 11};
  std::unique_ptr<DramDevice> device;
  EndpointAdapter* fea = nullptr;
  std::vector<HostAdapter*> hosts;

  // direct=true: the device sits in the host (point-to-point, no switch).
  explicit Testbed(int num_hosts, bool direct) {
    device = std::make_unique<DramDevice>(&engine, FpgaScratch(), "fpga");
    if (direct) {
      fea = fabric.AddEndpointAdapter(LeanAdapter(), "fea", device.get());
      auto* h = fabric.AddHostAdapter(LeanAdapter(), "h0");
      fabric.ConnectDirect(h, fea, FabrexLink());
      hosts.push_back(h);
    } else {
      auto* sw = fabric.AddSwitch(SwitchConfig{}, "fabrex");
      fea = fabric.AddEndpointAdapter(LeanAdapter(), "fea", device.get());
      fabric.Connect(sw, fea, FabrexLink());
      for (int i = 0; i < num_hosts; ++i) {
        auto* h = fabric.AddHostAdapter(LeanAdapter(), "h" + std::to_string(i));
        fabric.Connect(sw, h, FabrexLink());
        hosts.push_back(h);
      }
    }
    fabric.ConfigureRouting();
  }

  // Chained 64B writes from `host`; returns per-op latency summary.
  void ChainWrites(int host, std::uint32_t bytes, int count, Summary* lat,
                   std::uint64_t addr_seed) {
    auto remaining = std::make_shared<int>(count);
    auto addr = std::make_shared<std::uint64_t>(addr_seed);
    auto issue = std::make_shared<std::function<void()>>();
    HostAdapter* h = hosts[static_cast<std::size_t>(host)];
    PbrId dst = fea->id();
    *issue = [this, h, dst, bytes, remaining, addr, lat, issue] {
      if (--*remaining < 0) {
        return;
      }
      MemRequest req;
      req.type = MemRequest::Type::kWrite;
      req.addr = (*addr += 4160);
      req.bytes = bytes;
      const Tick t0 = engine.Now();
      h->Submit(dst, req, [this, lat, t0, issue] {
        lat->Add(ToNs(engine.Now() - t0));
        (*issue)();
      });
    };
    (*issue)();
  }
};

double DirectAttachLatency() {
  Testbed tb(1, /*direct=*/true);
  Summary lat;
  tb.ChainWrites(0, 64, 200, &lat, 0);
  tb.engine.Run();
  return lat.Mean();
}

double FabricLatency(int writers) {
  Testbed tb(writers, /*direct=*/false);
  std::vector<std::unique_ptr<Summary>> lats;
  for (int w = 0; w < writers; ++w) {
    lats.push_back(std::make_unique<Summary>());
    // Each writer keeps 4 writes in flight (a small host write-combining
    // window) — the concurrency that creates the contention the paper saw.
    for (int chain = 0; chain < 4; ++chain) {
      tb.ChainWrites(w, 64, 100, lats.back().get(),
                     (static_cast<std::uint64_t>(w) << 24) +
                         (static_cast<std::uint64_t>(chain) << 16));
    }
  }
  tb.engine.Run();
  Summary all;
  for (auto& l : lats) {
    for (double p = 0.0; p <= 100.0; p += 10.0) {
      all.Add(l->Percentile(p));
    }
  }
  return all.Mean();
}

struct BulkResult {
  double small_mean;
  double small_p99;
};

BulkResult SmallWithBulk(bool bulk_on, std::uint32_t bulk_bytes) {
  Testbed tb(2, /*direct=*/false);
  Summary small;
  tb.ChainWrites(0, 64, 300, &small, 0);
  if (bulk_on) {
    Summary bulk;
    // Keep 4 bulk writes outstanding for the whole run.
    for (int i = 0; i < 4; ++i) {
      tb.ChainWrites(1, bulk_bytes, 100, &bulk, (1ULL << 28) + (static_cast<std::uint64_t>(i) << 20));
    }
  }
  tb.engine.Run();
  return BulkResult{small.Mean(), small.P99()};
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("D3a", "§3 Difference #3 (interference numbers)",
              "64B write latency to a disaggregated device: in-host vs fabric, concurrency "
              "sweep, and 16KB interleaving");

  BenchReport report("pcie_interference");
  const double direct = DirectAttachLatency();
  std::printf("in-host (direct attach) 64B write:            %8.1f ns\n", direct);
  report.Note("direct_attach_ns", direct);

  std::printf("\nconcurrent 64B writers through the FabreX switch:\n");
  std::printf("%-10s %-14s %-14s\n", "writers", "mean (ns)", "added vs in-host (ns)");
  for (int n : {1, 2, 4, 8, 16}) {
    const double lat = FabricLatency(n);
    std::printf("%-10d %-14.1f %-14.1f\n", n, lat, lat - direct);
    report.Note("fabric_writers" + std::to_string(n) + "_ns", lat);
  }
  std::printf("(paper: concurrent 64B writes add ~600 ns one-way vs holding the card in-host)\n");

  std::printf("\n64B stream interleaved with 16KB bulk writes (2 hosts, same device):\n");
  const BulkResult alone = SmallWithBulk(false, 0);
  const BulkResult with_bulk = SmallWithBulk(true, 16 * 1024);
  std::printf("%-28s mean %8.1f ns   p99 %8.1f ns\n", "64B alone", alone.small_mean,
              alone.small_p99);
  std::printf("%-28s mean %8.1f ns   p99 %8.1f ns\n", "64B + 16KB interleave",
              with_bulk.small_mean, with_bulk.small_p99);
  std::printf("degradation: %.1fx mean, %.1fx p99 (paper: 'degraded drastically')\n",
              with_bulk.small_mean / alone.small_mean, with_bulk.small_p99 / alone.small_p99);
  report.Note("alone_mean_ns", alone.small_mean);
  report.Note("alone_p99_ns", alone.small_p99);
  report.Note("interleaved_mean_ns", with_bulk.small_mean);
  report.Note("interleaved_p99_ns", with_bulk.small_p99);
  report.Note("degradation_mean", with_bulk.small_mean / alone.small_mean);
  report.Note("degradation_p99", with_bulk.small_p99 / alone.small_p99);
  report.WriteJson();
  PrintFooter();
  return 0;
}
