// X2: design-choice ablation — Flex Bus 68B vs 256B flit modes (paper
// §2.1). Small transactions prefer the small flit (less padding, lower
// serialization latency); bulk transfers prefer the large flit (3x payload
// per header). The crossover is the reason CXL keeps both.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

struct Result {
  double latency_ns;
  double wire_bytes_per_payload;  // overhead factor on the wire
};

Result Measure(FlitMode mode, std::uint32_t request_bytes, bool is_write) {
  Engine engine;
  FabricInterconnect fabric(&engine, 51);
  auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
  DramDevice dram(&engine, OmegaLocalDram(), "dram");

  AdapterConfig host_cfg = OmegaHostAdapter();
  host_cfg.flit_mode = mode;
  AdapterConfig fea_cfg = OmegaEndpointAdapter();
  fea_cfg.flit_mode = mode;
  LinkConfig link = OmegaLink();
  link.flit_mode = mode;
  link.gigatransfers_per_sec = 8.0;  // x16 Gen3-era: serialization visible
  auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", &dram);
  auto* host = fabric.AddHostAdapter(host_cfg, "host");
  fabric.Connect(sw, fea, link);
  fabric.Connect(sw, host, link);
  fabric.ConfigureRouting();

  MemRequest req;
  req.type = is_write ? MemRequest::Type::kWrite : MemRequest::Type::kRead;
  req.bytes = request_bytes;
  const Tick t0 = engine.Now();
  bool done = false;
  host->Submit(fea->id(), req, [&] { done = true; });
  engine.Run();

  Result r;
  r.latency_ns = done ? ToNs(engine.Now() - t0) : -1.0;
  // Wire efficiency: payload-carrying flits in this mode.
  const std::uint32_t cap = FlitPayloadCapacity(mode);
  const std::uint32_t data_flits = (request_bytes + cap - 1) / cap;
  r.wire_bytes_per_payload =
      static_cast<double>(data_flits) * FlitWireBytes(mode) / request_bytes;
  return r;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("X2", "Flex Bus flit-mode ablation (§2.1)",
              "68B vs 256B flits across transaction sizes (8 GT/s x16 link)");
  std::printf("%-10s %-8s %-16s %-16s %-18s %-18s\n", "size", "op", "68B lat (ns)",
              "256B lat (ns)", "68B wire/payload", "256B wire/payload");
  BenchReport report("flit_modes");
  for (const std::uint32_t bytes : {64u, 256u, 1024u, 4096u, 65536u}) {
    for (const bool write : {false, true}) {
      const Result small = Measure(FlitMode::k68B, bytes, write);
      const Result large = Measure(FlitMode::k256B, bytes, write);
      std::printf("%-10u %-8s %-16.1f %-16.1f %-18.2f %-18.2f\n", bytes,
                  write ? "write" : "read", small.latency_ns, large.latency_ns,
                  small.wire_bytes_per_payload, large.wire_bytes_per_payload);
      const std::string key =
          std::to_string(bytes) + "B/" + (write ? "write" : "read") + "/";
      report.Note(key + "lat68_ns", small.latency_ns);
      report.Note(key + "lat256_ns", large.latency_ns);
      report.Note(key + "wire68_per_payload", small.wire_bytes_per_payload);
      report.Note(key + "wire256_per_payload", large.wire_bytes_per_payload);
    }
  }
  report.WriteJson();
  std::printf("(expected shape: 68B wins small transactions — a 64B line needs one 68B flit "
              "vs one mostly-empty 256B flit; 256B wins bulk — 1.33 wire bytes per payload "
              "byte vs 1.06, but fewer headers and credit round trips)\n");
  PrintFooter();
  return 0;
}
