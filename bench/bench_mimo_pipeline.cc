// M1: §5 case study — software MIMO baseband processing over UniFabric.
// Uplink frames (symbol samples + channel-state matrices) flow through
// FFT -> equalize/demodulate -> decode, each kernel an idempotent task on a
// hardware cooperative function's FAA engine. We compare:
//   a) UniFabric placement: frame objects in the fast heap tier, kernels
//      pipelined across both FAAs (the porting recipe of §5);
//   b) naive placement: every object lives on the remote FAM expander;
//   c) UniFabric with a mid-run FAA power cycle (passive failure domain):
//      idempotent re-execution keeps the pipeline alive.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"

namespace unifab {
namespace {

constexpr int kFrames = 200;
constexpr Tick kFrameInterval = FromUs(100.0);  // 10k frames/s offered
constexpr Tick kHorizon = FromMs(60.0);

struct StageCost {
  const char* name;
  Tick cost;
  std::uint32_t output_bytes;
};

constexpr StageCost kStages[] = {
    {"fft", FromUs(40.0), 32 * 1024},
    {"demod", FromUs(30.0), 16 * 1024},
    {"decode", FromUs(60.0), 8 * 1024},
};

struct Outcome {
  std::uint64_t frames_done = 0;
  double mean_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t reexecutions = 0;
};

Outcome Run(bool fast_tier, bool inject_failure) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 2;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.itask.attempt_timeout = FromMs(2.0);
  opts.itask.max_attempts = 1000;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);
  ITaskRuntime* tasks = runtime.itasks();

  const int tier = fast_tier ? 0 : 1;
  Summary frame_latency;

  // Channel-state information matrix: shared input for every frame's
  // equalization stage (kept hot by UniFabric, remote in naive mode).
  const ObjectId csi = heap->Allocate(16 * 1024, tier);

  for (int f = 0; f < kFrames; ++f) {
    const Tick arrival = kFrameInterval * static_cast<Tick>(f);
    cluster.engine().ScheduleAt(
        arrival, [&cluster, heap, tasks, csi, tier, arrival, &frame_latency] {
          // Per-frame objects: raw samples plus per-stage outputs.
          const ObjectId samples = heap->Allocate(64 * 1024, tier);
          std::vector<ObjectId> stage_out;
          for (const auto& st : kStages) {
            stage_out.push_back(heap->Allocate(st.output_bytes, tier));
          }

          TaskId prev = kInvalidTask;
          for (std::size_t s = 0; s < 3; ++s) {
            TaskSpec spec;
            spec.name = kStages[s].name;
            spec.compute_cost = kStages[s].cost;
            spec.inputs = {s == 0 ? samples : stage_out[s - 1]};
            if (s == 1) {
              spec.inputs.push_back(csi);  // equalization needs channel state
            }
            spec.outputs = {stage_out[s]};
            if (prev != kInvalidTask) {
              spec.deps = {prev};
            }
            if (s == 2) {
              spec.apply = [&cluster, &frame_latency, arrival] {
                frame_latency.Add(ToUs(cluster.engine().Now() - arrival));
              };
            }
            prev = tasks->Submit(spec);
          }
        });
  }

  if (inject_failure) {
    cluster.engine().ScheduleAt(FromMs(8.0), [&cluster] { cluster.faa(0)->Fail(); });
    cluster.engine().ScheduleAt(FromMs(11.0), [&cluster] { cluster.faa(0)->Recover(); });
  }

  cluster.engine().RunUntil(kHorizon);

  Outcome out;
  out.frames_done = frame_latency.Count();
  if (!frame_latency.Empty()) {
    out.mean_us = frame_latency.Mean();
    out.p99_us = frame_latency.P99();
  }
  out.reexecutions = tasks->stats().reexecutions;
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("M1", "§5 case study (MIMO baseband)",
              "200 uplink frames @ 10k frames/s through FFT->demod->decode on 2 FAAs");
  std::printf("%-34s %-12s %-14s %-14s %-12s\n", "configuration", "frames", "mean (us)",
              "p99 (us)", "re-execs");

  const Outcome uni = Run(/*fast_tier=*/true, /*inject_failure=*/false);
  const Outcome naive = Run(false, false);
  const Outcome failure = Run(true, true);

  auto row = [](const char* name, const Outcome& o) {
    std::printf("%-34s %-12llu %-14.1f %-14.1f %-12llu\n", name,
                static_cast<unsigned long long>(o.frames_done), o.mean_us, o.p99_us,
                static_cast<unsigned long long>(o.reexecutions));
  };
  row("UniFabric (fast-tier frames)", uni);
  row("naive (all objects on FAM)", naive);
  row("UniFabric + FAA power cycle", failure);

  BenchReport report("mimo_pipeline");
  const struct { const char* key; const Outcome* o; } rows[] = {
      {"unifabric", &uni}, {"naive", &naive}, {"failure", &failure}};
  for (const auto& r : rows) {
    const std::string key(r.key);
    report.Note(key + "/frames", r.o->frames_done);
    report.Note(key + "/mean_us", r.o->mean_us);
    report.Note(key + "/p99_us", r.o->p99_us);
    report.Note(key + "/reexecutions", r.o->reexecutions);
  }
  report.Note("placement_speedup", naive.mean_us / uni.mean_us);
  report.WriteJson();

  std::printf("\nplacement speedup: %.2fx mean frame latency\n", naive.mean_us / uni.mean_us);
  std::printf("(expected shape: fast-tier staging shortens every capture/writeback leg; the "
              "power-cycled run still completes all frames via idempotent re-execution)\n");
  PrintFooter();
  return 0;
}
