// E-COH: coherent shared-memory window (CXL.cache-style) — hardware
// coherence vs. software replication crossover (paper DP#2).
//
// One FAM chassis exports a coherent window; every host gets a CoherentPort
// into its bounded snoop-filter directory. Two shared-counter structures
// run the same closed-loop read/write mix on top of the SAME substrate:
//
//   * CohPtr<Record>: one 1 KiB hardware-coherent object (16 blocks).
//     Reads touch all 16 blocks (port-cache hits while nobody writes);
//     writes are an 8-byte Store that acquires a single block exclusively.
//   * NodeReplicated<Counter, AddOp, CoherentPort>: per-host replicas with
//     a shared op log in the window. Reads are local once synced; every
//     write appends to the log (tail + entry block, both cross-fabric).
//
// At write fraction 0 replication must win (replica reads are one tail hit;
// CohPtr scans 16 blocks). As the write fraction rises, log appends and
// replay fetches swamp the replicas while CohPtr pays one single-block
// ownership transfer per write — the bench locates the crossover and
// enforces both endpoints (exit 1 on violation).

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cohptr.h"
#include "src/core/replicated.h"
#include "src/core/runtime.h"
#include "src/sim/random.h"

namespace unifab {
namespace {

constexpr Tick kHorizon = FromUs(400.0);
constexpr double kWriteFracs[] = {0.0, 0.05, 0.2, 0.5};

struct Counter {
  std::int64_t value = 0;
};
struct AddOp {
  std::int64_t delta;
};

// 16 coherence blocks: the "type-unconscious" object CohPtr serves whole.
struct Record {
  std::int64_t value = 0;
  std::uint8_t pad[1016] = {};
};

struct Outcome {
  std::uint64_t ops = 0;
  std::uint64_t back_invals = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t txn_failures = 0;
};

std::unique_ptr<Cluster> MakeCluster(int hosts) {
  ClusterConfig ccfg;
  ccfg.num_hosts = hosts;
  ccfg.num_fams = 1;
  ccfg.num_faas = 0;
  return std::make_unique<Cluster>(ccfg);
}

RuntimeOptions MakeOptions() {
  RuntimeOptions opts;
  opts.heap_local_bytes = 1ULL << 20;
  opts.heap.migration_enabled = false;
  opts.coherent_window = true;
  opts.coherent_window_bytes = 1ULL << 20;
  return opts;
}

// Closed loop per host: read with probability (1 - write_frac), else write.
// `read` / `write` take the host index and a continuation.
Outcome Drive(Cluster& cluster, UniFabricRuntime& runtime, int hosts, double write_frac,
              const std::function<void(int, std::function<void()>)>& read,
              const std::function<void(int, std::function<void()>)>& write) {
  auto rng = std::make_shared<Rng>(17);
  auto total = std::make_shared<std::uint64_t>(0);
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (int h = 0; h < hosts; ++h) {
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [h, rng, total, write_frac, &read, &write, loop] {
      ++*total;
      if (rng->NextBool(write_frac)) {
        write(h, [loop] { (*loop)(); });
      } else {
        read(h, [loop] { (*loop)(); });
      }
    };
    loops.push_back(loop);
    (*loop)();
  }
  cluster.engine().RunUntil(kHorizon);

  Outcome out;
  out.ops = *total;
  const CoherentDirStats& d = runtime.coherent_directory()->stats();
  out.back_invals = d.back_invals_sent;
  out.recalls = d.recalls;
  out.invalidations = d.invalidations;
  for (int h = 0; h < hosts; ++h) {
    out.txn_failures += runtime.coherent_port(h)->stats().txn_failures;
  }
  return out;
}

Outcome RunCohPtr(int hosts, double write_frac) {
  auto cluster = MakeCluster(hosts);
  UniFabricRuntime runtime(cluster.get(), MakeOptions());
  auto rec = CohPtr<Record>::Make(runtime.coherent_window());

  const std::int64_t one = 1;
  return Drive(
      *cluster, runtime, hosts, write_frac,
      [&](int h, std::function<void()> k) {
        rec.Read(runtime.coherent_port(h),
                 [k = std::move(k)](const Record&, bool) { k(); });
      },
      [&](int h, std::function<void()> k) {
        rec.Store(runtime.coherent_port(h), 0, sizeof(one), &one,
                  [k = std::move(k)](bool) { k(); });
      });
}

Outcome RunReplicated(int hosts, double write_frac) {
  auto cluster = MakeCluster(hosts);
  UniFabricRuntime runtime(cluster.get(), MakeOptions());
  const std::uint64_t log_base = runtime.coherent_window()->Allocate(64 * 4096);
  NodeReplicated<Counter, AddOp, CoherentPort> nr(
      &cluster->engine(), log_base, 4095,
      [](Counter& c, const AddOp& op) { c.value += op.delta; });
  std::vector<int> reps;
  for (int h = 0; h < hosts; ++h) {
    reps.push_back(nr.AddReplica(runtime.coherent_port(h)));
  }

  return Drive(
      *cluster, runtime, hosts, write_frac,
      [&](int h, std::function<void()> k) {
        nr.Read(reps[static_cast<std::size_t>(h)],
                [k = std::move(k)](const Counter&) { k(); });
      },
      [&](int h, std::function<void()> k) {
        nr.Execute(reps[static_cast<std::size_t>(h)], AddOp{1},
                   [k = std::move(k)] { k(); });
      });
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("E-COH", "coherent window: hardware coherence vs software replication",
              "CohPtr (16-block coherent object, 1-block writes) vs NodeReplicated "
              "(per-host replicas + op log) over the same CoherentPort substrate");

  BenchReport report("coherent_window");
  bool fail = false;

  for (const int hosts : {2, 4}) {
    std::printf("\n--- %d hosts, %.0f us closed loop ---\n", hosts, ToNs(kHorizon) / 1000.0);
    std::printf("%-11s %-12s %-12s %-10s %-22s %-10s\n", "write mix", "CohPtr ops",
                "NR ops", "winner", "dir bi/recall/inv", "failures");
    double crossover = -1.0;
    std::uint64_t coh0 = 0;
    std::uint64_t nr0 = 0;
    std::uint64_t coh50 = 0;
    std::uint64_t nr50 = 0;
    for (const double wf : kWriteFracs) {
      const Outcome coh = RunCohPtr(hosts, wf);
      const Outcome nr = RunReplicated(hosts, wf);
      const char* winner = coh.ops >= nr.ops ? "CohPtr" : "NR";
      if (crossover < 0.0 && coh.ops >= nr.ops) {
        crossover = wf;
      }
      if (wf == 0.0) {
        coh0 = coh.ops;
        nr0 = nr.ops;
      }
      if (wf == 0.5) {
        coh50 = coh.ops;
        nr50 = nr.ops;
      }
      char mix[16];
      std::snprintf(mix, sizeof(mix), "%.0f%%", wf * 100);
      char dirs[32];
      std::snprintf(dirs, sizeof(dirs), "%llu/%llu/%llu",
                    static_cast<unsigned long long>(coh.back_invals),
                    static_cast<unsigned long long>(coh.recalls),
                    static_cast<unsigned long long>(coh.invalidations));
      std::printf("%-11s %-12llu %-12llu %-10s %-22s %-10llu\n", mix,
                  static_cast<unsigned long long>(coh.ops),
                  static_cast<unsigned long long>(nr.ops), winner, dirs,
                  static_cast<unsigned long long>(coh.txn_failures + nr.txn_failures));

      char prefix[48];
      std::snprintf(prefix, sizeof(prefix), "hosts%d/writes%.0f%%/", hosts, wf * 100);
      report.Note(std::string(prefix) + "cohptr_ops", coh.ops);
      report.Note(std::string(prefix) + "nr_ops", nr.ops);
      report.Note(std::string(prefix) + "cohptr_back_invals", coh.back_invals);
      report.Note(std::string(prefix) + "cohptr_recalls", coh.recalls);
      report.Note(std::string(prefix) + "cohptr_invalidations", coh.invalidations);
      if (coh.txn_failures + nr.txn_failures != 0) {
        std::fprintf(stderr, "FAIL: protocol failures in a healthy fabric (hosts=%d wf=%.2f)\n",
                     hosts, wf);
        fail = true;
      }
    }
    // Endpoints of the trade (DP#2): replication wins read-only, hardware
    // coherence wins write-heavy; the sweep must cross in between.
    if (!(nr0 > coh0)) {
      std::fprintf(stderr,
                   "FAIL: replication should win the read-only mix at %d hosts "
                   "(NR %llu vs CohPtr %llu)\n",
                   hosts, static_cast<unsigned long long>(nr0),
                   static_cast<unsigned long long>(coh0));
      fail = true;
    }
    if (!(coh50 > nr50)) {
      std::fprintf(stderr,
                   "FAIL: hardware coherence should win the 50%% write mix at %d hosts "
                   "(CohPtr %llu vs NR %llu)\n",
                   hosts, static_cast<unsigned long long>(coh50),
                   static_cast<unsigned long long>(nr50));
      fail = true;
    }
    char xkey[32];
    std::snprintf(xkey, sizeof(xkey), "hosts%d/crossover_wf", hosts);
    char xval[16];
    std::snprintf(xval, sizeof(xval), "%.2f", crossover);
    report.Note(xkey, std::string(xval));
    std::printf("crossover: CohPtr overtakes NR at write fraction %s\n",
                crossover < 0 ? "none (>0.5)" : xval);
  }

  report.WriteJson();
  std::printf("(expected shape: NodeReplicated turns read-mostly sharing into local replays; "
              "once writes dominate, its log appends cost two fabric transactions each while "
              "CohPtr pays one single-block ownership transfer — hardware coherence wins)\n");
  PrintFooter();
  return fail ? 1 : 0;
}
