// D3b: §3 Difference #3 — the three credit-based flow-control pathologies
// the paper calls out for routable PCIe, each with its FCC-style mitigation:
//   1. credit allocation: exponential ramp-up lets a heavy port squeeze a
//      light port (vs static equal shares);
//   2. credit-flow scheduling: credit-agnostic FIFO service causes
//      head-of-line blocking (vs virtual output queues);
//   3. credit coordination: starvation back-propagates across a switch
//      cascade, spreading a congestion "victim area" (vs deeper credits).

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/fabric/link.h"
#include "src/fabric/switch.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace unifab {
namespace {

// Raw endpoint that sends flits and records arrivals; optionally slow to
// return input credits (models a congested device).
class Node : public FlitReceiver {
 public:
  Node(Engine* engine, Tick credit_hold) : engine_(engine), credit_hold_(credit_hold) {}

  void ReceiveFlit(const Flit& flit, int /*port*/) override {
    ++received_;
    last_arrival_ = engine_->Now();
    latency_ns_.Add(ToNs(engine_->Now() - flit.created_at));
    per_src_[flit.src].Add(ToNs(engine_->Now() - flit.created_at));
    if (credit_hold_ == 0) {
      endpoint->ReturnCredit(flit.channel);
    } else {
      engine_->Schedule(credit_hold_, [this, ch = flit.channel] { endpoint->ReturnCredit(ch); });
    }
  }

  // Sends `count` flits to `dst`, paced every `gap`.
  void Pump(PbrId dst, int count, Tick gap, Channel channel = Channel::kMem) {
    for (int i = 0; i < count; ++i) {
      engine_->Schedule(gap * static_cast<Tick>(i), [this, dst, channel] {
        Flit f;
        f.txn_id = ++txn_;
        f.channel = channel;
        f.opcode = Opcode::kMemWr;
        f.src = self;
        f.dst = dst;
        f.payload_bytes = 64;
        f.created_at = engine_->Now();
        endpoint->Send(f);  // drops on overflow, like a saturated DLLP queue
      });
    }
  }

  // Latency of flits from one source, as observed at this node.
  const Summary& FromSrc(PbrId src) { return per_src_[src]; }

  PbrId self = 0;
  LinkEndpoint* endpoint = nullptr;
  std::uint64_t received_ = 0;
  Tick last_arrival_ = 0;
  Summary latency_ns_;
  std::unordered_map<PbrId, Summary> per_src_;

 private:
  Engine* engine_;
  Tick credit_hold_;
  std::uint64_t txn_ = 0;
};

// A configurable two-level fabric: `n_edge` nodes on switch 0, `n_far`
// nodes on switch 1, linked by one inter-switch trunk.
struct Cascade {
  Cascade(int n_edge, int n_far, const SwitchConfig& sw_cfg, const LinkConfig& edge_link,
          const LinkConfig& trunk_link, std::vector<Tick> far_holds,
          std::vector<Tick> edge_holds = {}) {
    edge_holds.resize(static_cast<std::size_t>(n_edge), 0);
    sw0 = std::make_unique<FabricSwitch>(&engine, sw_cfg, "sw0");
    sw1 = std::make_unique<FabricSwitch>(&engine, sw_cfg, "sw1");
    trunk = std::make_unique<Link>(&engine, trunk_link, 1, "trunk");
    const int p0 = sw0->AttachPort(&trunk->end(0));
    const int p1 = sw1->AttachPort(&trunk->end(1));

    PbrId next_id = 1;
    auto attach = [&](FabricSwitch* sw, Tick hold) {
      nodes.push_back(std::make_unique<Node>(&engine, hold));
      links.push_back(std::make_unique<Link>(&engine, edge_link,
                                             10 + static_cast<std::uint64_t>(nodes.size()),
                                             "edge"));
      Link* l = links.back().get();
      const int port = sw->AttachPort(&l->end(0));
      Node* node = nodes.back().get();
      l->end(1).Bind(node, 0);
      node->endpoint = &l->end(1);
      node->self = next_id++;
      sw->SetRoute(node->self, port);
      return node;
    };

    for (int i = 0; i < n_edge; ++i) {
      edge.push_back(attach(sw0.get(), edge_holds[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < n_far; ++i) {
      far.push_back(attach(sw1.get(), far_holds[static_cast<std::size_t>(i)]));
    }
    // Cross-switch routes go over the trunk.
    for (Node* f : far) {
      sw0->SetRoute(f->self, p0);
    }
    for (Node* e : edge) {
      sw1->SetRoute(e->self, p1);
    }
  }

  Engine engine;
  std::unique_ptr<FabricSwitch> sw0;
  std::unique_ptr<FabricSwitch> sw1;
  std::unique_ptr<Link> trunk;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<Node*> edge;
  std::vector<Node*> far;
};

LinkConfig EdgeLink() {
  LinkConfig cfg;
  cfg.gigatransfers_per_sec = 16.0;
  cfg.lanes = 4;
  cfg.propagation = FromNs(30.0);
  cfg.credits_per_vc = 8;
  cfg.credit_return_latency = FromNs(30.0);
  cfg.tx_queue_depth = 32;
  return cfg;
}

// ----------------------------------------------------------------------
// Pathology 1: credit allocation (exponential ramp-up vs static).
BenchReport* g_report = nullptr;

void CreditAllocation() {
  std::printf("1) credit allocation: heavy flow vs sporadic flow sharing one output\n");
  std::printf("%-22s %-16s %-16s %-18s %s\n", "allocator", "mean (ns)", "p99 (ns)",
              "delivered/sent", "final weights");
  for (const bool rampup : {false, true}) {
    SwitchConfig sw;
    sw.arbitration = SwitchArbitration::kWeighted;
    sw.credit_alloc = rampup ? CreditAllocPolicy::kExponentialRampUp
                             : CreditAllocPolicy::kStatic;
    sw.credit_realloc_period = FromNs(500.0);
    // Single switch: 3 edge nodes (heavy, sporadic, sink). Shallow output
    // buffering so the arbitration choice (not queue drain order) decides
    // who advances.
    LinkConfig shallow = EdgeLink();
    shallow.tx_queue_depth = 8;
    shallow.credits_per_vc = 8;
    // The sink drains slowly (holds credits 200 ns), so the heavy input
    // keeps a standing backlog inside the switch.
    Cascade c(3, 0, sw, shallow, shallow, {}, {0, 0, FromNs(200)});
    Node* heavy = c.edge[0];
    Node* sporadic = c.edge[1];
    Node* sink = c.edge[2];

    heavy->Pump(sink->self, 12000, FromNs(5));      // saturating
    sporadic->Pump(sink->self, 100, FromNs(500));   // light, latency-sensitive
    c.engine.RunUntil(FromUs(60));
    const Summary& sp = sink->FromSrc(sporadic->self);
    const int heavy_port = c.sw0->RouteFor(heavy->self);
    const int sporadic_port = c.sw0->RouteFor(sporadic->self);
    std::printf("%-22s %-16.1f %-16.1f %3zu/100            H=%.0f S=%.0f\n",
                rampup ? "exponential ramp-up" : "static equal",
                sp.Empty() ? 0.0 : sp.Mean(), sp.Empty() ? 0.0 : sp.P99(), sp.Count(),
                c.sw0->InputWeight(heavy_port), c.sw0->InputWeight(sporadic_port));
    const std::string key = rampup ? "alloc/rampup/" : "alloc/static/";
    g_report->Note(key + "sporadic_mean_ns", sp.Empty() ? 0.0 : sp.Mean());
    g_report->Note(key + "sporadic_p99_ns", sp.Empty() ? 0.0 : sp.P99());
    g_report->Note(key + "sporadic_delivered", static_cast<std::uint64_t>(sp.Count()));
  }
  std::printf("(ramp-up hands the heavy port an ever-growing share; the sporadic port's "
              "flits are squeezed out — most never get through)\n\n");
}

// ----------------------------------------------------------------------
// Pathology 2: credit-agnostic scheduling -> head-of-line blocking.
void HolBlocking() {
  std::printf("2) credit-flow scheduling: single-FIFO (credit-agnostic) vs virtual output "
              "queues\n");
  std::printf("%-22s %-20s %-20s %-16s\n", "input queueing", "victim mean (ns)",
              "victim done (us)", "HoL events");
  for (const bool voq : {false, true}) {
    SwitchConfig sw;
    sw.virtual_output_queues = voq;
    sw.arbitration = SwitchArbitration::kFifo;
    LinkConfig shallow = EdgeLink();
    shallow.credits_per_vc = 2;
    shallow.tx_queue_depth = 2;
    // 2 senders + congested sink (holds credits 2 us) + idle sink.
    Cascade c(4, 0, sw, shallow, shallow, {}, {0, 0, FromUs(2), 0});
    Node* mixed = c.edge[0];  // alternates hot/idle destinations
    Node* flood = c.edge[1];
    Node* hot = c.edge[2];
    Node* idle = c.edge[3];

    flood->Pump(hot->self, 3000, FromNs(9));
    for (int i = 0; i < 100; ++i) {
      c.engine.Schedule(FromNs(100) * static_cast<Tick>(i), [&, i] {
        mixed->Pump(hot->self, 1, FromNs(1));
        mixed->Pump(idle->self, 1, FromNs(1));
      });
    }
    c.engine.RunUntil(FromUs(80));
    const Summary& victim = idle->FromSrc(mixed->self);
    std::printf("%-22s %-20.1f %-20.1f %-16llu\n", voq ? "virtual output queues" : "single FIFO",
                victim.Empty() ? 0.0 : victim.Mean(), ToUs(idle->last_arrival_),
                static_cast<unsigned long long>(c.sw0->stats().hol_blocked_events));
    const std::string key = voq ? "hol/voq/" : "hol/fifo/";
    g_report->Note(key + "victim_mean_ns", victim.Empty() ? 0.0 : victim.Mean());
    g_report->Note(key + "victim_done_us", ToUs(idle->last_arrival_));
    g_report->Note(key + "hol_events", c.sw0->stats().hol_blocked_events);
  }
  std::printf("(FIFO pins idle-bound flits behind the congested head; VOQ releases them)\n\n");
}

// ----------------------------------------------------------------------
// Pathology 3: starvation back-propagation across a cascade.
void StarvationBackprop() {
  std::printf("3) credit coordination: congestion spreading across a 2-switch cascade\n");
  std::printf("   (victim shares only the trunk with the aggressor; its own sink is idle; "
              "victim offered load = 4 flits/us over the run)\n");
  std::printf("%-34s %-24s %-20s\n", "victim placement", "victim tput (flits/us)",
              "victim p99 (ns)");
  for (const bool own_vc : {false, true}) {
    SwitchConfig sw;
    sw.virtual_output_queues = true;
    LinkConfig trunk = EdgeLink();
    trunk.credits_per_vc = 8;
    trunk.tx_queue_depth = 16;
    // far[0] = hot sink (slow credit return), far[1] = victim's sink (fast).
    Cascade c(2, 2, sw, EdgeLink(), trunk, {FromUs(2), 0});
    Node* aggressor = c.edge[0];
    Node* victim = c.edge[1];

    aggressor->Pump(c.far[0]->self, 2000, FromNs(10), Channel::kMem);
    victim->Pump(c.far[1]->self, 400, FromNs(100),
                 own_vc ? Channel::kIo : Channel::kMem);
    c.engine.RunUntil(FromUs(100));
    const double tput = static_cast<double>(c.far[1]->received_) / 100.0;
    const Summary& vic = c.far[1]->FromSrc(victim->self);
    std::printf("%-34s %-24.2f %-20.1f\n",
                own_vc ? "dedicated virtual channel" : "shared VC with aggressor", tput,
                vic.Empty() ? 0.0 : vic.P99());
    const std::string key = own_vc ? "backprop/own_vc/" : "backprop/shared_vc/";
    g_report->Note(key + "victim_tput_flits_per_us", tput);
    g_report->Note(key + "victim_p99_ns", vic.Empty() ? 0.0 : vic.P99());
  }
  std::printf("(the hot sink exhausts the shared VC's trunk credits, so starvation "
              "back-propagates into sw0 and collapses a flow that shares nothing but the "
              "trunk — the 'victim area' spreads. A separate credit pool (virtual channel / "
              "dedicated lane, as FCC DP#4 argues) contains it)\n");
}

}  // namespace
}  // namespace unifab

int main() {
  unifab::PrintHeader("D3b", "§3 Difference #3 (CFC pathologies)",
                      "credit allocation, credit-agnostic scheduling, and credit "
                      "coordination at scale");
  unifab::BenchReport report("cfc_pathologies");
  unifab::g_report = &report;
  unifab::CreditAllocation();
  unifab::HolBlocking();
  unifab::StarvationBackprop();
  unifab::g_report = nullptr;
  report.WriteJson();
  unifab::PrintFooter();
  return 0;
}
