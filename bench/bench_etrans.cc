// P1: DP#1 ablation — data movement as a managed service. A host runs a
// latency-sensitive foreground loop against FAM0 while an 8 MiB bulk copy
// FAM0 -> FAM1 proceeds three ways:
//   a) CPU copy: the same core moves the data via synchronous load/store
//      (stalls compete with the foreground for MSHRs and the FHA);
//   b) eTrans delegated: a migration agent executes the copy, unthrottled;
//   c) eTrans + arbiter lease: the copy is paced by the central module's
//      bandwidth throttle.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/runtime.h"

namespace unifab {
namespace {

struct Result {
  double fg_mean_ns = 0.0;
  double fg_p99_ns = 0.0;
  std::uint64_t fg_ops = 0;
  double bulk_ms = 0.0;
  double bulk_progress = 0.0;
};

constexpr std::uint64_t kBulkBytes = 8ULL << 20;
constexpr Tick kHorizon = FromMs(8.0);

ClusterConfig MakeCluster() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 2;
  cfg.num_faas = 0;
  return cfg;
}

// Runs the foreground loop for the horizon; `start_bulk` keys the copy
// strategy.
Result Run(int mode) {
  Cluster cluster(MakeCluster());
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  MemoryHierarchy* core = cluster.host(0)->core(0);

  Result res;
  Summary fg;
  // Foreground: dependent 64B reads over FAM0 with a small local compute
  // gap, the "data structure traversal" pattern DP#1 keeps synchronous.
  auto fg_addr = std::make_shared<std::uint64_t>(cluster.FamBase(0));
  auto fg_loop = std::make_shared<std::function<void()>>();
  *fg_loop = [&cluster, core, fg_addr, &fg, fg_loop] {
    *fg_addr = cluster.FamBase(0) + (*fg_addr + 4160) % (64 << 20);
    const Tick t0 = cluster.engine().Now();
    core->Access(*fg_addr, false, [&cluster, &fg, t0, fg_loop] {
      fg.Add(ToNs(cluster.engine().Now() - t0));
      cluster.engine().Schedule(FromNs(200), *fg_loop);  // think time
    });
  };
  (*fg_loop)();

  Tick bulk_done_at = 0;
  auto copied = std::make_shared<std::uint64_t>(0);
  if (mode == 0) {
    // CPU copy: a memcpy-style loop keeping 8 line copies in flight, which
    // saturates the core's MSHRs exactly as a real software copy would.
    auto offset = std::make_shared<std::uint64_t>(0);
    auto copy = std::make_shared<std::function<void()>>();
    *copy = [&cluster, core, offset, copied, copy, &bulk_done_at] {
      if (*offset >= kBulkBytes) {
        if (*copied >= kBulkBytes && bulk_done_at == 0) {
          bulk_done_at = cluster.engine().Now();
        }
        return;
      }
      const std::uint64_t off = *offset;
      *offset += 64;
      core->Access(cluster.FamBase(0) + (32ULL << 20) + off, false,
                   [&cluster, core, off, copied, copy, &bulk_done_at] {
                     core->Access(cluster.FamBase(1) + off,
                                  true, [&cluster, copied, copy, &bulk_done_at] {
                                    *copied += 64;
                                    if (*copied >= kBulkBytes && bulk_done_at == 0) {
                                      bulk_done_at = cluster.engine().Now();
                                    }
                                    (*copy)();
                                  });
                   });
    };
    for (int i = 0; i < 8; ++i) {
      (*copy)();
    }
  } else {
    ETransDescriptor desc;
    desc.src.push_back(Segment{cluster.fam(0)->id(), 32ULL << 20, kBulkBytes});
    desc.dst.push_back(Segment{cluster.fam(1)->id(), 0, kBulkBytes});
    desc.attributes.throttled = (mode == 2);
    desc.attributes.request_mbps = 4000.0;
    desc.ownership = Ownership::kInitiator;
    TransferFuture f = runtime.etrans()->Submit(runtime.host_agent(0), desc);
    f.Then([&bulk_done_at, copied](const TransferResult& r) {
      bulk_done_at = r.completed_at;
      *copied = r.bytes;
    });
  }

  cluster.engine().RunUntil(kHorizon);
  res.fg_mean_ns = fg.Mean();
  res.fg_p99_ns = fg.P99();
  res.fg_ops = fg.Count();
  res.bulk_ms = bulk_done_at == 0 ? -1.0 : ToMs(bulk_done_at);
  res.bulk_progress = static_cast<double>(*copied) / static_cast<double>(kBulkBytes);
  return res;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("P1", "DP#1 ablation (eTrans)",
              "foreground 64B reads vs an 8 MiB bulk copy: CPU copy vs delegated eTrans "
              "vs throttled eTrans");
  std::printf("%-26s %-14s %-14s %-12s %-12s\n", "bulk strategy", "fg mean (ns)", "fg p99 (ns)",
              "fg ops", "bulk (ms)");
  const char* names[] = {"CPU synchronous copy", "eTrans delegated", "eTrans + arbiter lease"};
  const char* keys[] = {"cpu_copy", "etrans", "etrans_leased"};
  BenchReport report("etrans");
  double base_mean = 0.0;
  for (int mode = 0; mode < 3; ++mode) {
    const Result r = Run(mode);
    if (mode == 0) {
      base_mean = r.fg_mean_ns;
    }
    const std::string key(keys[mode]);
    report.Note(key + "/fg_mean_ns", r.fg_mean_ns);
    report.Note(key + "/fg_p99_ns", r.fg_p99_ns);
    report.Note(key + "/fg_ops", static_cast<std::uint64_t>(r.fg_ops));
    report.Note(key + "/bulk_ms", r.bulk_ms);
    report.Note(key + "/bulk_progress", r.bulk_progress);
    if (r.bulk_ms < 0.0) {
      std::printf("%-26s %-14.1f %-14.1f %-12llu >8 (%.0f%% done)\n", names[mode], r.fg_mean_ns,
                  r.fg_p99_ns, static_cast<unsigned long long>(r.fg_ops),
                  r.bulk_progress * 100.0);
    } else {
      std::printf("%-26s %-14.1f %-14.1f %-12llu %-12.2f\n", names[mode], r.fg_mean_ns,
                  r.fg_p99_ns, static_cast<unsigned long long>(r.fg_ops), r.bulk_ms);
    }
  }
  std::printf("(expected shape: delegation removes MSHR/stall interference from the foreground; "
              "the lease trades bulk completion time for foreground isolation; CPU-copy "
              "baseline fg mean = %.0f ns)\n", base_mean);
  report.WriteJson();
  PrintFooter();
  return 0;
}
