// T1: reproduces paper Table 1 — the commodity memory-fabric registry.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fabric/registry.h"

int main() {
  unifab::PrintHeader("T1", "Table 1",
                      "Commodity memory fabrics (static registry; CAPI/Gen-Z merged into CXL)");
  std::printf("%s", unifab::FabricTableToString().c_str());

  const auto* cxl = unifab::FindFabric("CXL");
  std::printf("\nmainstream fabric: %s (%s), products: %s\n", cxl->interconnect.c_str(),
              cxl->vendor.c_str(), cxl->product_demonstration.c_str());
  int merged = 0;
  for (const auto& spec : unifab::CommodityFabrics()) {
    if (spec.merged_into_cxl) {
      ++merged;
    }
  }
  std::printf("fabrics absorbed by CXL: %d (Gen-Z, CAPI/OpenCAPI)\n", merged);

  unifab::BenchReport report("table1_registry");
  report.Note("fabrics", static_cast<std::uint64_t>(unifab::CommodityFabrics().size()));
  report.Note("merged_into_cxl", static_cast<std::uint64_t>(merged));
  report.Note("mainstream", cxl->interconnect);
  report.WriteJson();
  unifab::PrintFooter();
  return 0;
}
