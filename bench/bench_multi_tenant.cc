// E-TEN: multi-tenant scenario engine with QoS-aware arbitration.
//
// Two experiments over the declarative ScenarioSpec DSL:
//
//  1. Scale sweep — mixed guaranteed/burstable/best-effort populations at
//     1k, 10k, and 100k tenants driving eTrans/heap/collective/FAA traffic
//     through one runtime. Per class the bench reports issued/completed/
//     failed and completion p99, and *asserts* (exit code) the per-class
//     SLOs written in the scenario plus exactly-once terminal accounting
//     (issued == completed + failed, nothing in flight at quiescence).
//
//  2. Isolation — a fixed guaranteed population measured alone, then again
//     under a 16x best-effort burst storm. Guaranteed-class preemption and
//     weighted sharing in the arbiter must hold the guaranteed p99 within
//     a recorded bound of its quiet baseline; the bench fails otherwise.
//
// Everything is deterministic DES: the JSON report is golden-gated and must
// be bit-identical under UNIFAB_SHARDS=1 and =4.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/scenario.h"
#include "src/topo/cluster.h"

namespace unifab {
namespace {

// Guaranteed p99 under the best-effort storm may exceed the quiet baseline
// by at most this much (the recorded isolation bound).
constexpr double kIsolationMarginUs = 400.0;

struct ClassOutcome {
  std::string name;
  QosClass qos;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double p99_us = 0.0;
  double slo_p99_us = 0.0;
};

struct Outcome {
  std::vector<ClassOutcome> classes;
  std::uint64_t in_flight = 0;
  bool conserved = false;
  ArbiterQosStats qos;
};

Outcome Run(const std::string& scenario_text) {
  ClusterConfig ccfg;
  ccfg.num_hosts = 4;
  ccfg.num_fams = 2;
  ccfg.num_faas = 1;
  ccfg.num_switches = 2;
  Cluster cluster(ccfg);

  RuntimeOptions opts;
  // Give guaranteed tenants a per-tenant credit budget: one concurrent
  // full-rate transfer's worth. The audit's tenant_budget_ceiling check
  // rides along under UNIFAB_AUDIT=1.
  opts.arbiter.qos[static_cast<int>(QosClass::kGuaranteed)].tenant_budget_mbps = 4000.0;
  UniFabricRuntime runtime(&cluster, opts);

  const ScenarioSpec spec = ScenarioSpec::Parse(scenario_text);
  if (!spec.errors.empty()) {
    for (const auto& e : spec.errors) {
      std::fprintf(stderr, "scenario error: %s\n", e.c_str());
    }
    std::exit(2);
  }
  TenantEngine* tenants = runtime.AttachTenants(spec);
  tenants->Start();
  cluster.engine().Run();  // arrivals stop at the horizon; run drains the rest

  Outcome out;
  for (std::size_t c = 0; c < tenants->num_classes(); ++c) {
    const TenantClassStats& s = tenants->class_stats(c);
    ClassOutcome co;
    co.name = spec.classes[c].name;
    co.qos = spec.classes[c].qos;
    co.issued = s.issued;
    co.completed = s.completed;
    co.failed = s.failed;
    co.p99_us = s.latency_us.P99();
    co.slo_p99_us = spec.classes[c].slo_p99_us;
    out.classes.push_back(co);
  }
  out.in_flight = tenants->in_flight();
  out.conserved =
      out.in_flight == 0 && tenants->issued() == tenants->completed() + tenants->failed();
  out.qos = runtime.arbiter()->qos_stats();
  return out;
}

double P99Of(const Outcome& out, const std::string& cls) {
  for (const auto& c : out.classes) {
    if (c.name == cls) {
      return c.p99_us;
    }
  }
  return 0.0;
}

const char* kGoldClass =
    "class name=gold qos=guaranteed tenants=64 arrival=poisson rate_ops_s=5000 "
    "bytes=16384 request_mbps=4000 mix=etrans:1 slo_p99_us=400\n";

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("E-TEN", "multi-tenant QoS sweep + isolation",
              "scenario-driven tenant populations vs per-class SLOs and a "
              "best-effort storm vs the guaranteed-class isolation bound");

  struct Leg {
    std::string name;
    std::string spec;
  };
  // The sweep scales population x10 per leg while shrinking per-tenant rate
  // and payload so event counts stay tractable; classes keep the 1/9/90
  // guaranteed/burstable/best-effort split throughout.
  const std::vector<Leg> sweep = {
      {"mix_1k",
       "scenario mix_1k\nseed 101\nhorizon_us 2000\n"
       "class name=gold qos=guaranteed tenants=10 arrival=poisson rate_ops_s=2000 "
       "bytes=16384 request_mbps=4000 mix=etrans:2,heap_read:1,faa:1 "
       "slo_p99_us=100\n"
       "class name=silver qos=burstable tenants=90 arrival=poisson rate_ops_s=2000 "
       "bytes=8192 mix=heap_read:2,heap_write:1,etrans:1 slo_p99_us=100\n"
       "class name=bronze qos=best_effort tenants=900 arrival=bursty burst=4 "
       "rate_ops_s=1000 bytes=4096 mix=heap_read:1\n"},
      {"mix_10k",
       "scenario mix_10k\nseed 102\nhorizon_us 600\n"
       "class name=gold qos=guaranteed tenants=100 arrival=poisson rate_ops_s=2000 "
       "bytes=8192 request_mbps=2000 mix=etrans:1,heap_read:1 slo_p99_us=600\n"
       "class name=silver qos=burstable tenants=900 arrival=poisson rate_ops_s=2000 "
       "bytes=1024 mix=heap_read:1,heap_write:1 slo_p99_us=600\n"
       "class name=bronze qos=best_effort tenants=9000 arrival=poisson "
       "rate_ops_s=1000 bytes=1024 mix=heap_read:1\n"},
      {"mix_100k",
       "scenario mix_100k\nseed 103\nhorizon_us 2000\n"
       "class name=gold qos=guaranteed tenants=1000 arrival=poisson "
       "rate_ops_s=1000 bytes=4096 request_mbps=2000 mix=etrans:1,heap_read:3 "
       "slo_p99_us=600\n"
       "class name=silver qos=burstable tenants=9000 arrival=poisson "
       "rate_ops_s=500 bytes=256 mix=heap_read:1,heap_write:1 slo_p99_us=600\n"
       "class name=bronze qos=best_effort tenants=90000 arrival=poisson "
       "rate_ops_s=200 bytes=256 mix=heap_read:1\n"},
  };

  BenchReport report("multi_tenant");
  int failures = 0;

  std::printf("%-10s %-8s %-12s %-9s %-9s %-8s %-10s %-10s %-5s\n", "scenario", "class",
              "qos", "issued", "complete", "failed", "p99 us", "slo us", "ok");
  for (const Leg& leg : sweep) {
    const Outcome out = Run(leg.spec);
    if (!out.conserved) {
      std::fprintf(stderr, "FAIL %s: completions not conserved (in_flight=%llu)\n",
                   leg.name.c_str(), static_cast<unsigned long long>(out.in_flight));
      ++failures;
    }
    for (const ClassOutcome& c : out.classes) {
      const bool slo_ok = c.slo_p99_us <= 0.0 || c.p99_us <= c.slo_p99_us;
      if (!slo_ok) {
        ++failures;
      }
      std::printf("%-10s %-8s %-12s %-9llu %-9llu %-8llu %-10.1f %-10.1f %-5s\n",
                  leg.name.c_str(), c.name.c_str(), QosClassName(c.qos),
                  static_cast<unsigned long long>(c.issued),
                  static_cast<unsigned long long>(c.completed),
                  static_cast<unsigned long long>(c.failed), c.p99_us, c.slo_p99_us,
                  slo_ok ? "yes" : "NO");
      const std::string k = leg.name + "/" + c.name;
      report.Note(k + "/issued", c.issued);
      report.Note(k + "/completed", c.completed);
      report.Note(k + "/failed", c.failed);
      report.Note(k + "/p99_us", c.p99_us);
      report.Note(k + "/slo_ok", std::uint64_t{slo_ok ? 1u : 0u});
    }
    report.Note(leg.name + "/conserved", std::uint64_t{out.conserved ? 1u : 0u});
    report.Note(leg.name + "/preemptions", out.qos.preemptions);
    report.Note(leg.name + "/budget_clamps", out.qos.budget_clamps);
    report.Note(leg.name + "/grants_guaranteed",
                out.qos.grants[static_cast<int>(QosClass::kGuaranteed)]);
    report.Note(leg.name + "/grants_best_effort",
                out.qos.grants[static_cast<int>(QosClass::kBestEffort)]);
  }

  // Isolation: the same guaranteed population, quiet vs under a best-effort
  // burst storm. Preemption + weighted shares must keep the guaranteed p99
  // within kIsolationMarginUs of its baseline.
  const std::string base_spec =
      std::string("scenario iso_base\nseed 7\nhorizon_us 1000\n") + kGoldClass;
  const std::string storm_spec =
      std::string("scenario iso_storm\nseed 7\nhorizon_us 1000\n") + kGoldClass +
      "class name=storm qos=best_effort tenants=1024 arrival=bursty burst=8 "
      "rate_ops_s=10000 bytes=8192 request_mbps=4000 mix=etrans:1\n";
  const Outcome base = Run(base_spec);
  const Outcome storm = Run(storm_spec);
  const double base_p99 = P99Of(base, "gold");
  const double storm_p99 = P99Of(storm, "gold");
  const bool isolated = storm_p99 <= base_p99 + kIsolationMarginUs;
  if (!isolated || !base.conserved || !storm.conserved) {
    ++failures;
  }
  std::printf("\nisolation: gold p99 %.1f us quiet -> %.1f us under storm "
              "(bound +%.0f us) %s; storm preemptions=%llu\n",
              base_p99, storm_p99, kIsolationMarginUs, isolated ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(storm.qos.preemptions));
  report.Note("isolation/base_p99_us", base_p99);
  report.Note("isolation/storm_p99_us", storm_p99);
  report.Note("isolation/margin_us", kIsolationMarginUs);
  report.Note("isolation/ok", std::uint64_t{isolated ? 1u : 0u});
  report.Note("isolation/storm_preemptions", storm.qos.preemptions);
  report.Note("isolation/storm_grants_guaranteed",
              storm.qos.grants[static_cast<int>(QosClass::kGuaranteed)]);
  report.Note("isolation/storm_grants_best_effort",
              storm.qos.grants[static_cast<int>(QosClass::kBestEffort)]);
  report.Note("failures", std::uint64_t{static_cast<std::uint64_t>(failures)});

  report.WriteJson();
  PrintFooter();
  return failures == 0 ? 0 : 1;
}
