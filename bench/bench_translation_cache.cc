// E-XLAT: switch-resident memory control — adapter translation-cache hit
// rate vs. migration churn, plus the sharded temperature profiler at scale.
//
// Scenario "churn": host 0's heap owns a FAM-resident object population;
// host 1 resolves fabric-virtual addresses against the switch-resident
// agent through its adapter translation cache (DeACT-style). Between fixed
// 10 us windows the bench migrates a burst of objects between the two FAM
// tiers; every commit invalidates host 1's cached translations, so the hit
// rate must degrade monotonically as the per-burst migration count grows.
// The bench enforces that monotonicity (exit 1 on violation).
//
// Scenario "profiler_scale": one host reads 64 Ki zipf-skewed objects with
// epoch migration on, all placement resolved through the agent — the
// sharded profiler's fold path at a size the legacy O(n) snapshot was
// built to avoid.
//
// Scenario "sparse_shards": 5 live objects spread over 32 profiler shards,
// so most shards fold empty. The epoch-temperature summary must still hold
// exactly one sample per live object (empty shards contribute nothing) —
// enforced here because a double-count regression would silently skew the
// promote/demote thresholds rather than crash.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/sim/random.h"

namespace unifab {
namespace {

constexpr Tick kChurnHorizon = FromUs(250.0);
constexpr Tick kBurstPeriod = FromUs(10.0);
constexpr int kChurnLevels[] = {0, 16, 64, 256};  // migrations per burst

struct ChurnOutcome {
  double hit_rate = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t commits = 0;
  std::uint64_t busy_skips = 0;
};

// Hit rate at host 1's adapter cache while host 0's heap migrates
// `burst` objects between the two FAM tiers every kBurstPeriod.
ChurnOutcome RunChurn(int burst) {
  ClusterConfig ccfg;
  ccfg.num_hosts = 2;
  ccfg.num_fams = 2;
  ccfg.num_faas = 0;
  Cluster cluster(ccfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 1ULL << 20;
  opts.heap.migration_enabled = false;  // churn is explicit, not policy-driven
  opts.switch_mem = true;
  opts.xlat_cache.capacity = 4096;  // no capacity evictions: misses are churn
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);
  SwitchMemClient* reader = runtime.switch_mem_client(1);

  constexpr int kObjects = 1024;
  std::vector<ObjectId> objects;
  std::vector<std::uint64_t> vaddrs;
  objects.reserve(kObjects);
  vaddrs.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    const ObjectId id = heap->Allocate(64, /*tier_hint=*/1);
    objects.push_back(id);
    vaddrs.push_back(heap->Info(id).vaddr);
  }

  // Closed-loop resolve streams on host 1: each completion issues the next
  // zipf-picked vaddr, so the cache sees a steady skewed lookup mix.
  ZipfGenerator zipf(/*seed=*/11, /*skew=*/0.6, kObjects);
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [reader, &vaddrs, &zipf, loop] {
    reader->Resolve(vaddrs[zipf.Next()],
                    [loop](const Translation&, bool) { (*loop)(); });
  };
  for (int i = 0; i < 8; ++i) {
    (*loop)();
  }

  // Drive churn from between-run windows (the same pattern the heap tests
  // use): advance to each burst boundary, then flip `burst` objects to the
  // other FAM tier. kBusy results (a prior flip still committing) are
  // skipped and counted.
  ChurnOutcome out;
  std::size_t cursor = 0;
  for (Tick t = kBurstPeriod; t <= kChurnHorizon; t += kBurstPeriod) {
    cluster.engine().RunUntil(t);
    for (int j = 0; j < burst; ++j) {
      const ObjectId id = objects[cursor++ % objects.size()];
      const int dst = heap->TierOf(id) == 1 ? 2 : 1;
      if (heap->Migrate(id, dst, nullptr) == MigrateResult::kBusy) {
        ++out.busy_skips;
      }
    }
  }
  cluster.engine().RunUntil(kChurnHorizon);

  const TranslationCacheStats& cache = reader->cache()->stats();
  out.hit_rate = cache.HitRate();
  out.lookups = cache.lookups;
  out.misses = cache.misses;
  out.invalidations = cache.invalidations;
  out.commits = runtime.switch_mem_agent()->stats().commits;
  return out;
}

struct ProfilerOutcome {
  std::uint64_t folds = 0;
  std::uint64_t live_entries = 0;
  std::uint64_t summary_count = 0;
  double summary_mean = 0.0;
  std::uint64_t hot_candidates = 0;
  std::uint64_t cold_candidates = 0;
  std::uint64_t promotions = 0;
  std::uint64_t commits = 0;
  std::uint64_t reads = 0;
};

// 64 Ki objects, zipf 0.9, epoch migration on, placement through the agent.
ProfilerOutcome RunProfilerScale() {
  ClusterConfig ccfg;
  ccfg.num_hosts = 1;
  ccfg.num_fams = 2;
  ccfg.num_faas = 0;
  Cluster cluster(ccfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 2ULL << 20;
  opts.heap.migration_enabled = true;
  opts.heap.epoch_length = FromUs(50.0);
  opts.heap.promote_threshold = 0.5;
  opts.heap.demote_threshold = 0.05;
  opts.heap.profiler.shards = 8;
  opts.switch_mem = true;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);

  constexpr int kObjects = 65536;
  std::vector<ObjectId> objects;
  objects.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    objects.push_back(heap->Allocate(64, /*tier_hint=*/1));
  }

  ZipfGenerator zipf(/*seed=*/7, /*skew=*/0.9, kObjects);
  Summary lat;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&cluster, heap, &objects, &zipf, &lat, loop] {
    const ObjectId id = objects[zipf.Next()];
    const Tick t0 = cluster.engine().Now();
    heap->Read(id, [&cluster, &lat, t0, loop] {
      lat.Add(ToNs(cluster.engine().Now() - t0));
      (*loop)();
    });
  };
  for (int i = 0; i < 8; ++i) {
    (*loop)();
  }
  cluster.engine().RunUntil(FromUs(220.0));  // four 50 us epochs

  const ShardedTemperatureProfiler& prof = heap->profiler();
  ProfilerOutcome out;
  out.folds = prof.folds();
  out.live_entries = prof.entries();
  out.summary_count = prof.epoch_temperature().Count();
  out.summary_mean = prof.epoch_temperature().Mean();
  out.hot_candidates = prof.hot_candidates();
  out.cold_candidates = prof.cold_candidates();
  out.promotions = heap->stats().promotions;
  out.commits = runtime.switch_mem_agent()->stats().commits;
  out.reads = lat.Count();
  return out;
}

// 5 objects over 32 profiler shards: most shards are empty at every fold.
ProfilerOutcome RunSparseShards() {
  ClusterConfig ccfg;
  ccfg.num_hosts = 1;
  ccfg.num_fams = 1;
  ccfg.num_faas = 0;
  Cluster cluster(ccfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 1ULL << 20;
  opts.heap.migration_enabled = false;
  opts.heap.epoch_length = FromUs(10.0);
  opts.heap.profiler.shards = 32;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);

  std::vector<ObjectId> objects;
  for (int i = 0; i < 5; ++i) {
    objects.push_back(heap->Allocate(64, /*tier_hint=*/0));
  }

  // Three epochs of accesses to one object; the others only decay. Folding
  // is access-triggered, so advance past each boundary and touch.
  for (int epoch = 1; epoch <= 3; ++epoch) {
    cluster.engine().RunUntil(FromUs(10.0) * epoch + FromUs(1.0));
    for (int j = 0; j < 4; ++j) {
      heap->Read(objects[0], nullptr);
    }
  }
  cluster.engine().Run();

  const ShardedTemperatureProfiler& prof = heap->profiler();
  ProfilerOutcome out;
  out.folds = prof.folds();
  out.live_entries = prof.entries();
  out.summary_count = prof.epoch_temperature().Count();
  out.summary_mean = prof.epoch_temperature().Mean();
  return out;
}

}  // namespace
}  // namespace unifab

int main() {
  using namespace unifab;
  PrintHeader("E-XLAT", "switch-resident memory control",
              "adapter translation-cache hit rate vs. migration churn; sharded "
              "profiler fold at 64Ki objects; empty-shard summary conservation");

  BenchReport report("translation_cache");

  std::printf("\n--- churn sweep: 1024 objs, 8 resolve streams, 250 us, burst/10 us ---\n");
  std::printf("%-18s %-10s %-10s %-10s %-14s %-10s %-10s\n", "burst", "hit rate", "lookups",
              "misses", "invalidations", "commits", "busy");
  std::vector<ChurnOutcome> levels;
  for (const int burst : kChurnLevels) {
    const ChurnOutcome o = RunChurn(burst);
    std::printf("%-18d %-10.4f %-10llu %-10llu %-14llu %-10llu %-10llu\n", burst, o.hit_rate,
                static_cast<unsigned long long>(o.lookups),
                static_cast<unsigned long long>(o.misses),
                static_cast<unsigned long long>(o.invalidations),
                static_cast<unsigned long long>(o.commits),
                static_cast<unsigned long long>(o.busy_skips));
    const std::string key = "churn_" + std::to_string(burst);
    report.Note(key + "/hit_rate", o.hit_rate);
    report.Note(key + "/lookups", o.lookups);
    report.Note(key + "/misses", o.misses);
    report.Note(key + "/invalidations", o.invalidations);
    report.Note(key + "/commits", o.commits);
    report.Note(key + "/busy_skips", o.busy_skips);
    levels.push_back(o);
  }
  for (std::size_t i = 1; i < levels.size(); ++i) {
    if (!(levels[i].hit_rate < levels[i - 1].hit_rate)) {
      std::fprintf(stderr,
                   "FAIL: hit rate not monotone in churn: burst %d -> %.6f, burst %d -> %.6f\n",
                   kChurnLevels[i - 1], levels[i - 1].hit_rate, kChurnLevels[i],
                   levels[i].hit_rate);
      return 1;
    }
  }
  std::printf("hit rate degrades monotonically with churn: ok\n");

  std::printf("\n--- profiler at scale: 64Ki objs, zipf 0.9, 4 epochs, migration on ---\n");
  const ProfilerOutcome scale = RunProfilerScale();
  std::printf("folds %llu  entries %llu  summary count %llu mean %.6f  hot %llu cold %llu  "
              "promotions %llu  commits %llu  reads %llu\n",
              static_cast<unsigned long long>(scale.folds),
              static_cast<unsigned long long>(scale.live_entries),
              static_cast<unsigned long long>(scale.summary_count), scale.summary_mean,
              static_cast<unsigned long long>(scale.hot_candidates),
              static_cast<unsigned long long>(scale.cold_candidates),
              static_cast<unsigned long long>(scale.promotions),
              static_cast<unsigned long long>(scale.commits),
              static_cast<unsigned long long>(scale.reads));
  report.Note("profiler_scale/folds", scale.folds);
  report.Note("profiler_scale/entries", scale.live_entries);
  report.Note("profiler_scale/summary_count", scale.summary_count);
  report.Note("profiler_scale/summary_mean", scale.summary_mean);
  report.Note("profiler_scale/hot_candidates", scale.hot_candidates);
  report.Note("profiler_scale/cold_candidates", scale.cold_candidates);
  report.Note("profiler_scale/promotions", scale.promotions);
  report.Note("profiler_scale/commits", scale.commits);
  report.Note("profiler_scale/reads", scale.reads);
  if (scale.summary_count != scale.live_entries) {
    std::fprintf(stderr, "FAIL: epoch-temperature summary has %llu samples for %llu entries\n",
                 static_cast<unsigned long long>(scale.summary_count),
                 static_cast<unsigned long long>(scale.live_entries));
    return 1;
  }

  std::printf("\n--- sparse shards: 5 objs over 32 shards, 3 epochs ---\n");
  const ProfilerOutcome sparse = RunSparseShards();
  std::printf("folds %llu  entries %llu  summary count %llu mean %.6f\n",
              static_cast<unsigned long long>(sparse.folds),
              static_cast<unsigned long long>(sparse.live_entries),
              static_cast<unsigned long long>(sparse.summary_count), sparse.summary_mean);
  report.Note("sparse_shards/folds", sparse.folds);
  report.Note("sparse_shards/entries", sparse.live_entries);
  report.Note("sparse_shards/summary_count", sparse.summary_count);
  report.Note("sparse_shards/summary_mean", sparse.summary_mean);
  if (sparse.summary_count != sparse.live_entries) {
    std::fprintf(stderr, "FAIL: empty shards double-counted: %llu samples for %llu entries\n",
                 static_cast<unsigned long long>(sparse.summary_count),
                 static_cast<unsigned long long>(sparse.live_entries));
    return 1;
  }
  std::printf("one summary sample per live entry across empty shards: ok\n");

  report.WriteJson();
  PrintFooter();
  return 0;
}
