// Pod scale-out quickstart: parse a scenario file that requests a pod
// topology (`pods 2`), build the matching DFabric pod cluster, and drive it
// with the scenario's tenant load plus one OFI-facade exchange across the
// Ethernet bridge.
//
//   $ ./build/examples/pod_scenario [examples/two_pod.scenario]

#include <cstdio>

#include "src/core/runtime.h"

using namespace unifab;

namespace {

// The embedded fallback keeps the example self-contained when it is run
// from a directory where examples/two_pod.scenario is not reachable.
constexpr const char* kEmbeddedSpec = R"(scenario two_pod_mixed
seed 7
horizon_us 2000
pods 2
class name=gold qos=guaranteed tenants=4 arrival=poisson rate_ops_s=4000 bytes=65536 request_mbps=4000 mix=etrans:3,heap_read:2,collect:1 slo_p99_us=1200
class name=bronze qos=best_effort tenants=12 arrival=bursty burst=8 rate_ops_s=1500 bytes=16384 mix=etrans:2,heap_write:1,faa:1
)";

ScenarioSpec LoadSpec(int argc, char** argv) {
  const char* candidates[] = {argc > 1 ? argv[1] : nullptr, "examples/two_pod.scenario",
                              "../examples/two_pod.scenario"};
  for (const char* path : candidates) {
    if (path == nullptr) {
      continue;
    }
    ScenarioSpec spec = ScenarioSpec::ParseFile(path);
    if (spec.errors.empty()) {
      std::printf("scenario: %s (from %s)\n", spec.name.c_str(), path);
      return spec;
    }
  }
  ScenarioSpec spec = ScenarioSpec::Parse(kEmbeddedSpec);
  std::printf("scenario: %s (embedded fallback)\n", spec.name.c_str());
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioSpec spec = LoadSpec(argc, argv);
  for (const auto& err : spec.errors) {
    std::fprintf(stderr, "scenario error: %s\n", err.c_str());
  }
  if (!spec.errors.empty()) {
    return 1;
  }

  // --- The topology the spec asked for: `pods N` -> a pod cluster. --------
  PodConfig pod;
  pod.num_hosts = 2;
  pod.num_fams = 1;
  pod.num_faas = 2;
  ClusterConfig cfg = DFabricPodCluster(spec.pods > 0 ? static_cast<int>(spec.pods) : 2, pod);
  cfg.seed = spec.seed;
  Cluster cluster(cfg);
  Engine& engine = cluster.engine();
  std::printf("pods: %d, hosts: %d, fams: %d, faas: %d, bridges: %zu\n", cluster.num_pods(),
              cluster.num_hosts(), cluster.num_fams(), cluster.num_faas(),
              cluster.bridges().size());

  UniFabricRuntime runtime(&cluster, RuntimeOptions{});

  // --- One OFI exchange across the bridge before the tenants arrive. ------
  OfiDomain* ofi = runtime.ofi();
  CompletionQueue cq0, cq1;
  HostServer* h0 = cluster.host(cluster.pod(0).hosts[0]);
  HostServer* h1 = cluster.host(cluster.pod(1).hosts[0]);
  Endpoint* ep0 = ofi->CreateEndpoint(h0->id(), runtime.host_agent(cluster.pod(0).hosts[0]),
                                      &cq0, h0->name() + "/ep");
  Endpoint* ep1 = ofi->CreateEndpoint(h1->id(), runtime.host_agent(cluster.pod(1).hosts[0]),
                                      &cq1, h1->name() + "/ep");
  // Buffers live on each pod's FAM (hosts orchestrate; the fabric serves
  // the memory), so the payload crosses the bridge FAM-to-FAM.
  const MemRegion src =
      ofi->RegisterMemory(cluster.fam(cluster.pod(0).fams[0])->id(), 0x10000, 1 << 16);
  const MemRegion dst =
      ofi->RegisterMemory(cluster.fam(cluster.pod(1).fams[0])->id(), 0x20000, 1 << 16);
  ep1->PostRecv(/*tag=*/42, dst, /*context=*/1);
  ep0->PostSend(h1->id(), /*tag=*/42, src, /*context=*/2);
  engine.Run();
  OfiCompletion c;
  while (cq0.Reap(&c)) {
    std::printf("ofi %s on %s: %s, %llu bytes at t=%.2f us (cross-pod)\n", OfiOpName(c.op),
                ep0->name().c_str(), c.ok ? "ok" : "failed",
                static_cast<unsigned long long>(c.bytes), ToUs(c.completed_at));
  }
  while (cq1.Reap(&c)) {
    std::printf("ofi %s on %s: %s, %llu bytes at t=%.2f us (cross-pod)\n", OfiOpName(c.op),
                ep1->name().c_str(), c.ok ? "ok" : "failed",
                static_cast<unsigned long long>(c.bytes), ToUs(c.completed_at));
  }

  // --- The scenario's tenant load over the whole pod cluster. -------------
  TenantEngine* tenants = runtime.AttachTenants(spec);
  tenants->Start();
  engine.Run();
  std::printf("tenants: issued=%llu completed=%llu failed=%llu over %u tenants\n",
              static_cast<unsigned long long>(tenants->issued()),
              static_cast<unsigned long long>(tenants->completed()),
              static_cast<unsigned long long>(tenants->failed()), spec.TotalTenants());
  for (std::size_t i = 0; i < tenants->num_classes(); ++i) {
    const TenantClassStats& cs = tenants->class_stats(i);
    std::printf("  class %-8s issued=%llu completed=%llu p99=%.1f us\n",
                spec.classes[i].name.c_str(), static_cast<unsigned long long>(cs.issued),
                static_cast<unsigned long long>(cs.completed), cs.latency_us.Percentile(0.99));
  }
  return 0;
}
