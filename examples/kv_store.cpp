// Far-memory key-value store over the unified heap.
//
// A KV store keeps 32K values (256 B each) in fabric-attached memory; a
// zipf-skewed client workload drives GET/PUT traffic. The unified heap's
// temperature profiler promotes hot values into host DRAM transparently —
// the store's code never mentions placement.
//
//   $ ./build/examples/kv_store

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/uniptr.h"
#include "src/sim/random.h"

using namespace unifab;

namespace {

struct Value {
  char bytes[240];
  std::uint32_t version;
};

// A minimal KV store: string keys -> UniPtr<Value>. All placement decisions
// belong to the heap.
class KvStore {
 public:
  explicit KvStore(UnifiedHeap* heap) : heap_(heap) {}

  bool Put(const std::string& key, const Value& value, std::function<void()> done) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      auto ptr = UniPtr<Value>::Make(heap_, value, /*tier_hint=*/1);  // born on the expander
      if (!ptr.valid()) {
        return false;
      }
      it = map_.emplace(key, ptr).first;
      heap_->Write(ptr.id(), std::move(done));
      return true;
    }
    it->second.Write(value, std::move(done));
    return true;
  }

  bool Get(const std::string& key, std::function<void(const Value&)> done) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    it->second.Read(std::move(done));
    return true;
  }

  int TierOf(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? -1 : heap_->TierOf(it->second.id());
  }

 private:
  UnifiedHeap* heap_;
  std::unordered_map<std::string, UniPtr<Value>> map_;
};

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 0;
  cfg.host.hierarchy.l2 = CacheConfig{256 * 1024, 64, 8};
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 2ULL << 20;  // 2 MiB of precious host DRAM
  opts.heap.epoch_length = FromMs(1.0);
  opts.heap.promote_threshold = 0.5;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);
  KvStore store(heap);

  // Load 32K keys.
  constexpr int kKeys = 32768;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("user:" + std::to_string(i));
    Value v{};
    std::snprintf(v.bytes, sizeof(v.bytes), "profile-%d", i);
    v.version = 1;
    store.Put(keys.back(), v, nullptr);
  }
  cluster.engine().Run();
  const Tick load_end = cluster.engine().Now();
  std::printf("loaded %d keys into fabric-attached memory (tier 1) in %.2f ms\n", kKeys,
              ToMs(load_end));

  // Zipf client: 95%% GET / 5%% PUT, closed loop, 4 clients, 50 ms.
  ZipfGenerator zipf(17, 0.95, kKeys);
  Rng rng(23);
  Summary get_lat;
  Summary put_lat;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&] {
    const std::string& key = keys[zipf.Next()];
    const Tick t0 = cluster.engine().Now();
    if (rng.NextBool(0.05)) {
      Value v{};
      v.version = static_cast<std::uint32_t>(rng.Next());
      store.Put(key, v, [&, t0] {
        put_lat.Add(ToNs(cluster.engine().Now() - t0));
        (*loop)();
      });
    } else {
      store.Get(key, [&, t0](const Value&) {
        get_lat.Add(ToNs(cluster.engine().Now() - t0));
        (*loop)();
      });
    }
  };
  for (int c = 0; c < 4; ++c) {
    (*loop)();
  }

  // Report every 10 ms so the migration effect is visible over time.
  std::printf("\n%-10s %-12s %-12s %-14s %-16s\n", "t (ms)", "GET mean", "GET p99 (ns)",
              "ops so far (k)", "hot-tier keys");
  for (int ms = 10; ms <= 50; ms += 10) {
    cluster.engine().RunUntil(load_end + FromMs(ms));
    int hot = 0;
    for (int i = 0; i < 64; ++i) {  // sample the 64 hottest zipf ranks
      if (store.TierOf(keys[static_cast<std::size_t>(i)]) == 0) {
        ++hot;
      }
    }
    std::printf("%-10d %-12.1f %-12.1f %-14.1f %d/64 hottest\n", ms,
                get_lat.Empty() ? 0.0 : get_lat.Mean(),
                get_lat.Empty() ? 0.0 : get_lat.P99(),
                static_cast<double>(get_lat.Count() + put_lat.Count()) / 1000.0, hot);
  }

  std::printf("\nheap: %llu promotions, %llu demotions, %.1f MiB migrated\n",
              static_cast<unsigned long long>(heap->stats().promotions),
              static_cast<unsigned long long>(heap->stats().demotions),
              static_cast<double>(heap->stats().bytes_migrated) / (1 << 20));
  std::printf("PUT mean %.1f ns over %zu ops\n", put_lat.Mean(), put_lat.Count());
  return 0;
}
