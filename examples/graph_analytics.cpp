// Graph analytics over fabric-attached memory: neighborhood queries on a
// power-law graph whose adjacency lists live on a CXL memory expander.
//
// The workload samples a vertex by picking a random edge endpoint (so hubs
// are chosen in proportion to their degree — the realistic "who gets
// queried" distribution) and scans its adjacency list plus a few
// neighbors'. Two FCC levers matter on this irregular workload:
//   * the stride prefetcher helps the sequential scan of a long (hub)
//     adjacency list (DP#1: HW-assisted prefetching);
//   * the unified heap promotes hub adjacency objects, which dominate the
//     query mix (DP#2).
//
//   $ ./build/examples/graph_analytics

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/sim/random.h"

using namespace unifab;

namespace {

struct Graph {
  std::vector<std::vector<int>> adj;
  std::vector<std::pair<int, int>> edges;  // for degree-biased sampling
};

// Preferential attachment: early vertices become heavy hubs.
Graph MakeGraph(int n, int edges_per_vertex, std::uint64_t seed) {
  Graph g;
  g.adj.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (int v = 1; v < n; ++v) {
    for (int e = 0; e < edges_per_vertex; ++e) {
      const auto span = static_cast<std::uint64_t>(v);
      const int u = static_cast<int>(
          std::min(rng.NextBelow(span), std::min(rng.NextBelow(span), rng.NextBelow(span))));
      g.adj[static_cast<std::size_t>(v)].push_back(u);
      g.adj[static_cast<std::size_t>(u)].push_back(v);
      g.edges.emplace_back(v, u);
    }
  }
  return g;
}

struct QueryStats {
  Summary query_us;
};

// Issues 2-hop neighborhood queries; each adjacency list is one heap object
// whose size reflects its degree, so hub scans touch many cache lines.
class QueryEngine {
 public:
  QueryEngine(Cluster* cluster, UnifiedHeap* heap, const Graph& graph)
      : cluster_(cluster), heap_(heap), graph_(graph) {
    objects_.reserve(graph.adj.size());
    for (const auto& neighbors : graph.adj) {
      const auto bytes =
          static_cast<std::uint32_t>(std::max<std::size_t>(64, 8 + neighbors.size() * 4));
      objects_.push_back(heap_->Allocate(bytes, /*tier_hint=*/1));
    }
  }

  void Query(int v, int fanout, std::function<void()> done) {
    // Scan v's adjacency, then the first `fanout` neighbors' lists.
    heap_->Read(objects_[static_cast<std::size_t>(v)],
                [this, v, fanout, done = std::move(done)]() mutable {
                  const auto& neighbors = graph_.adj[static_cast<std::size_t>(v)];
                  const int n = std::min<int>(fanout, static_cast<int>(neighbors.size()));
                  if (n == 0) {
                    done();
                    return;
                  }
                  auto remaining = std::make_shared<int>(n);
                  for (int i = 0; i < n; ++i) {
                    heap_->Read(objects_[static_cast<std::size_t>(neighbors[
                                    static_cast<std::size_t>(i)])],
                                [remaining, done] {
                                  if (--*remaining == 0) {
                                    done();
                                  }
                                });
                  }
                });
  }

 private:
  Cluster* cluster_;
  UnifiedHeap* heap_;
  const Graph& graph_;
  std::vector<ObjectId> objects_;
};

double RunConfig(const Graph& graph, bool prefetch, bool migration) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 0;
  cfg.host.hierarchy.l2 = CacheConfig{256 * 1024, 64, 8};
  cfg.host.hierarchy.prefetch_enabled = prefetch;
  cfg.host.hierarchy.prefetch_degree = 4;
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.heap_local_bytes = 2ULL << 20;
  opts.heap.migration_enabled = migration;
  opts.heap.epoch_length = FromMs(1.0);
  opts.heap.promote_threshold = 0.8;
  UniFabricRuntime runtime(&cluster, opts);

  QueryEngine engine(&cluster, runtime.heap(0), graph);
  cluster.engine().Run();  // settle allocation-time writes
  const Tick start = cluster.engine().Now();

  Rng sampler(5);
  QueryStats stats;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&cluster, &graph, &engine, &sampler, &stats, loop] {
    // Degree-biased vertex choice: a uniformly random edge endpoint.
    const auto& edge = graph.edges[sampler.NextBelow(graph.edges.size())];
    const int v = sampler.NextBool(0.5) ? edge.first : edge.second;
    const Tick t0 = cluster.engine().Now();
    engine.Query(v, /*fanout=*/8, [&cluster, &stats, t0, loop] {
      stats.query_us.Add(ToUs(cluster.engine().Now() - t0));
      (*loop)();
    });
  };
  for (int c = 0; c < 2; ++c) {
    (*loop)();
  }
  cluster.engine().RunUntil(start + FromMs(50.0));
  return stats.query_us.Mean();
}

}  // namespace

int main() {
  std::printf("2-hop neighborhood queries on a 50K-vertex power-law graph stored on a CXL "
              "memory expander\n");
  std::printf("(degree-biased query mix, 2 client threads, 50 ms per configuration)\n\n");

  const Graph graph = MakeGraph(50000, 8, 11);
  std::size_t max_deg = 0;
  for (const auto& a : graph.adj) {
    max_deg = std::max(max_deg, a.size());
  }
  std::printf("graph: %zu vertices, %zu edges, max degree %zu\n\n", graph.adj.size(),
              graph.edges.size(), max_deg);

  std::printf("%-44s %s\n", "configuration", "mean query (us)");
  const double base = RunConfig(graph, false, false);
  std::printf("%-44s %.2f\n", "all-remote, no prefetch, no migration", base);
  const double pf = RunConfig(graph, true, false);
  std::printf("%-44s %.2f\n", "+ stride prefetcher", pf);
  const double mig = RunConfig(graph, false, true);
  std::printf("%-44s %.2f\n", "+ hub promotion (migration)", mig);
  const double both = RunConfig(graph, true, true);
  std::printf("%-44s %.2f\n", "+ both", both);

  std::printf("\nspeedup from FCC mechanisms: %.2fx\n", base / both);
  std::printf("(hub promotion carries the win: degree-biased queries concentrate on a few "
              "hot adjacency objects. The stride prefetcher is a wash here — pointer-chasing "
              "misses rarely repeat a stride, exactly the access class DP#1 says to keep "
              "synchronous.)\n");
  return 0;
}
