// The paper's §5 case study as a runnable application: a software MIMO
// baseband engine (Agora-style) ported onto UniFabric.
//
// The port follows the paper's recipe step by step:
//   1. move data objects (symbol frames, channel-state matrices) into the
//      unified heap;
//   2. pick a backend execution engine per computing block and wrap the
//      kernels as idempotent tasks inside hardware cooperative functions;
//   3. replace asynchronous communication with elastic transactions whose
//      ownership field says how completion is observed.
//
//   $ ./build/examples/mimo_baseband

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/uniptr.h"

using namespace unifab;

namespace {

// Channel-state information shared by all frames in a slot.
struct CsiMatrix {
  float coeffs[32][8];  // 32 subcarriers x 8 antennas (toy dimensions)
};

struct PipelineStats {
  Summary frame_us;
  std::uint64_t frames = 0;
};

class BasebandEngine {
 public:
  BasebandEngine(Cluster* cluster, UniFabricRuntime* runtime)
      : cluster_(cluster), runtime_(runtime), heap_(runtime->heap(0)) {
    // Step 1: channel state lives in the unified heap; the profiler keeps
    // it in the fast tier because every frame touches it.
    csi_ = UniPtr<CsiMatrix>::Make(heap_, CsiMatrix{});
  }

  // Step 2+3: one uplink frame = FFT -> equalize+demod -> decode, chained
  // idempotent tasks; inputs/outputs ride eTrans inside the task runtime.
  void SubmitFrame(PipelineStats* stats) {
    const Tick arrival = cluster_->engine().Now();
    const ObjectId samples = heap_->Allocate(64 * 1024);   // time-domain samples
    const ObjectId freq = heap_->Allocate(32 * 1024);      // frequency domain
    const ObjectId soft_bits = heap_->Allocate(16 * 1024); // LLRs
    const ObjectId mac_bits = heap_->Allocate(8 * 1024);   // decoded MAC payload

    TaskSpec fft;
    fft.name = "fft";
    fft.inputs = {samples};
    fft.outputs = {freq};
    fft.compute_cost = FromUs(40.0);
    const TaskId fft_id = runtime_->itasks()->Submit(fft);

    TaskSpec demod;
    demod.name = "equalize+demod";
    demod.inputs = {freq, csi_.id()};
    demod.outputs = {soft_bits};
    demod.deps = {fft_id};
    demod.compute_cost = FromUs(30.0);
    const TaskId demod_id = runtime_->itasks()->Submit(demod);

    TaskSpec decode;
    decode.name = "ldpc-decode";
    decode.inputs = {soft_bits};
    decode.outputs = {mac_bits};
    decode.deps = {demod_id};
    decode.compute_cost = FromUs(60.0);
    Cluster* cluster = cluster_;
    decode.apply = [cluster, stats, arrival] {
      stats->frame_us.Add(ToUs(cluster->engine().Now() - arrival));
      ++stats->frames;
    };
    runtime_->itasks()->Submit(decode);
  }

 private:
  Cluster* cluster_;
  UniFabricRuntime* runtime_;
  UnifiedHeap* heap_;
  UniPtr<CsiMatrix> csi_;
};

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 2;  // two accelerator chassis serve the pipelines
  Cluster cluster(cfg);

  RuntimeOptions opts;
  opts.itask.attempt_timeout = FromMs(2.0);
  UniFabricRuntime runtime(&cluster, opts);

  BasebandEngine engine(&cluster, &runtime);
  PipelineStats stats;

  // Radios deliver a frame every 100 us for 30 ms.
  constexpr int kFrames = 300;
  for (int f = 0; f < kFrames; ++f) {
    cluster.engine().ScheduleAt(FromUs(100.0) * static_cast<Tick>(f),
                                [&engine, &stats] { engine.SubmitFrame(&stats); });
  }

  // An FAA chassis power-cycles mid-run; the MAC never notices.
  cluster.engine().ScheduleAt(FromMs(12.0), [&cluster] {
    std::printf("t=12ms: faa0 lost power (passive failure domain)\n");
    cluster.faa(0)->Fail();
  });
  cluster.engine().ScheduleAt(FromMs(15.0), [&cluster] {
    std::printf("t=15ms: faa0 back\n");
    cluster.faa(0)->Recover();
  });

  cluster.engine().RunUntil(FromMs(60.0));

  std::printf("\nprocessed %llu/%d frames\n",
              static_cast<unsigned long long>(stats.frames), kFrames);
  std::printf("frame latency: mean %.1f us, p99 %.1f us\n", stats.frame_us.Mean(),
              stats.frame_us.P99());
  std::printf("task attempts %llu (re-executions %llu) — lost kernels were simply re-run\n",
              static_cast<unsigned long long>(runtime.itasks()->stats().attempts),
              static_cast<unsigned long long>(runtime.itasks()->stats().reexecutions));
  std::printf("accelerator kernels: faa0=%llu faa1=%llu\n",
              static_cast<unsigned long long>(
                  cluster.faa(0)->accelerator()->stats().kernels_completed),
              static_cast<unsigned long long>(
                  cluster.faa(1)->accelerator()->stats().kernels_completed));
  return 0;
}
