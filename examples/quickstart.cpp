// Quickstart: build a composable infrastructure, bring up the UniFabric
// runtime, and exercise each FCC primitive once.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/uniptr.h"
#include "src/fabric/registry.h"

using namespace unifab;

int main() {
  // --- 1. A rack: 2 hosts, 1 FAM chassis, 1 FAA chassis, 1 switch. --------
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 1;
  cfg.num_faas = 1;
  Cluster cluster(cfg);
  Engine& engine = cluster.engine();

  std::printf("== topology ==\n%s\n", cluster.fabric().TopologyToString().c_str());

  // --- 2. The UniFabric runtime on top. -----------------------------------
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});

  // --- 3. Load/store through the memory hierarchy (synchronous path). -----
  MemoryHierarchy* core = cluster.host(0)->core(0);
  Tick t0 = engine.Now();
  core->Access(/*local*/ 0x1000, false, nullptr);
  engine.Run();
  std::printf("local 64B read:  %.1f ns\n", ToNs(engine.Now() - t0));

  t0 = engine.Now();
  core->Access(cluster.FamBase(0), false, nullptr);
  engine.Run();
  std::printf("remote 64B read: %.1f ns (CXL-like fabric, 1 switch)\n\n",
              ToNs(engine.Now() - t0));

  // --- 4. Unified heap + smart pointer (DP#2). ----------------------------
  struct Sensor {
    double temperature;
    int samples;
  };
  UnifiedHeap* heap = runtime.heap(0);
  auto sensor = UniPtr<Sensor>::Make(heap, Sensor{21.5, 1});
  sensor.Update([](Sensor& s) {
    s.temperature += 0.5;
    ++s.samples;
  });
  engine.Run();
  std::printf("UniPtr<Sensor> lives in tier %d (%s); value = {%.1f C, %d samples}\n",
              heap->TierOf(sensor.id()),
              MemoryNodeTypeName(heap->Tier(heap->TierOf(sensor.id())).caps.type),
              sensor.Peek().temperature, sensor.Peek().samples);

  // --- 5. eTrans: delegated bulk movement with a bandwidth lease (DP#1/4). -
  ETransDescriptor bulk;
  bulk.src.push_back(Segment{cluster.host(0)->id(), 0, 1 << 20});
  bulk.dst.push_back(Segment{cluster.fam(0)->id(), 0, 1 << 20});
  bulk.attributes.throttled = true;
  bulk.attributes.request_mbps = 2000.0;
  bulk.ownership = Ownership::kInitiator;
  TransferFuture f = runtime.etrans()->Submit(runtime.host_agent(0), bulk);
  engine.Run();
  std::printf("eTrans moved %llu KiB (delegated, arbiter-paced) at t=%.2f us\n",
              static_cast<unsigned long long>(f.Value().bytes >> 10),
              ToUs(f.Value().completed_at));

  // --- 6. An idempotent task on the FAA (DP#3). ---------------------------
  const ObjectId in = heap->Allocate(4096);
  const ObjectId out = heap->Allocate(4096);
  TaskSpec spec;
  spec.name = "transform";
  spec.inputs = {in};
  spec.outputs = {out};
  spec.compute_cost = FromUs(25.0);
  bool task_done = false;
  spec.apply = [&] { task_done = true; };
  runtime.itasks()->Submit(spec);
  engine.Run();
  std::printf("idempotent task executed on %s: %s\n", cluster.faa(0)->name().c_str(),
              task_done ? "done" : "lost");

  // --- 7. A scalable function handling messages (DP#3b). ------------------
  int handled = 0;
  SFuncSpec sf;
  sf.name = "echo";
  sf.handlers[1] = SFuncHandler{FromUs(2.0), [&](SFuncContext&) { ++handled; }};
  const FunctionId fn = runtime.sfunc(0)->Install(sf);
  for (int i = 0; i < 3; ++i) {
    runtime.sfunc_client(0)->Invoke(cluster.faa(0)->id(), fn, 1, 128, nullptr);
  }
  engine.Run();
  std::printf("scalable function handled %d message(s) on the FAA\n\n", handled);

  // --- 8. The fabric this all models (paper Table 1). ---------------------
  std::printf("== commodity memory fabrics ==\n%s", FabricTableToString().c_str());
  return 0;
}
